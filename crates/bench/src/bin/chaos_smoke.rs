//! Membership chaos smoke check for CI (DESIGN.md §13).
//!
//! A crash *storm* — staggered whole-node crashes and rejoins, including a
//! node that dies twice — replayed over 5 seeds through three layers:
//!
//! 1. the differential harness (analytical executor vs conformance DES,
//!    agreement demanded on every observable including the membership
//!    sequence),
//! 2. exactly-once delivery (the storm run's per-epoch multisets must be
//!    byte-identical to the fault-free run of the same schedule), and
//! 3. the live engine (the storm applied as tick-scoped peer-down windows;
//!    the run must drain with the exact schedule-determined delivery and
//!    the plan's membership sequence).
//!
//! An in-process watchdog kills the binary after 300 s so a membership
//! deadlock fails CI fast instead of stalling it; ci.sh wraps the run in
//! the same hard timeout from outside.
//!
//! ```sh
//! cargo run --release --bin chaos_smoke
//! cargo run --release --bin chaos_smoke -- --seeds 2,4,6,8,10
//! cargo run --release --bin chaos_smoke -- --trace-out /tmp/chaos.json
//! ```
//!
//! With `--trace-out <path>` an instrumented storm run is traced for
//! `lobster_doctor`, whose report then carries the `== membership ==`
//! table attributing each crash/rejoin to a run phase.

use lobster_bench::{observability_from_args, write_observability};
use lobster_conformance::{check_engine_delivery, run_differential};
use lobster_core::policy_by_name;
use lobster_metrics::Instruments;
use lobster_pipeline::{ClusterSim, ConfigBuilder, ExperimentConfig, MembershipObservable};
use lobster_runtime::{run_with, EngineConfig, SyntheticStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("CHAOS SMOKE FAILED: {msg}");
    std::process::exit(1);
}

/// The storm: three nodes of a 4-node cluster crash on staggered windows
/// and node 1 dies a second time after recovering. Never downs more than
/// two nodes at once, so every tick keeps survivors to foster onto.
const STORM: [(u32, u64, Option<u64>); 4] = [
    (1, 2, Some(5)),
    (2, 4, Some(9)),
    (3, 7, Some(13)),
    (1, 15, Some(20)),
];

fn storm_config(seed: u64, with_storm: bool) -> ExperimentConfig {
    let dataset = lobster_data::Dataset::generate(
        "chaos-smoke",
        192,
        lobster_data::SizeDistribution::Uniform {
            lo: 2_000,
            hi: 16_000,
        },
        seed,
    );
    // 192 / (4 nodes × 2 GPUs × 2) = 12 iterations/epoch, 24 ticks total.
    let mut b = ConfigBuilder::new()
        .nodes(4)
        .gpus_per_node(2)
        .batch_size(2)
        .pipeline_threads(8)
        .cache_bytes(dataset.total_bytes() / 4)
        .dataset(dataset)
        .epochs(2)
        .seed(seed);
    if with_storm {
        for (node, tick, rejoin) in STORM {
            b = b
                .try_crash_node(node, tick, rejoin)
                .unwrap_or_else(|e| fail(&format!("storm schedule rejected: {e}")));
        }
    }
    b.build()
}

fn main() {
    let t0 = Instant::now();
    let mut seeds: Vec<u64> = vec![3, 5, 7, 11, 13];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .unwrap_or_else(|| fail("--seeds needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| fail("bad seed")))
                    .collect();
            }
            // Consumed by observability_from_args below.
            "--trace-out" => i += 1,
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let (trace_ins, trace_out) = observability_from_args();

    // In-process watchdog: a wedged barrier or membership deadlock must
    // fail the gate fast, not hang it.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(300));
        eprintln!("CHAOS SMOKE FAILED: hard 300s timeout exceeded");
        std::process::exit(99);
    });

    for &seed in &seeds {
        // 1. Differential: the storm through both simulators, every
        //    observable (membership included) compared.
        let cfg = storm_config(seed, true);
        let summary = run_differential(&cfg, "lobster").unwrap_or_else(|d| {
            eprintln!("{d}");
            fail(&format!("seed {seed}: executors diverged under the storm"));
        });

        // 2. Exactly-once: storm delivery == fault-free delivery.
        let (_, storm_obs) =
            ClusterSim::new(cfg.clone(), policy_by_name("lobster").unwrap()).run_observed();
        let (_, clean_obs) = ClusterSim::new(
            storm_config(seed, false),
            policy_by_name("lobster").unwrap(),
        )
        .run_observed();
        if storm_obs.delivered != clean_obs.delivered {
            fail(&format!(
                "seed {seed}: crash storm changed the delivered multiset (exactly-once broken)"
            ));
        }
        let events = storm_obs.membership_sequence().len();
        if events != 2 * STORM.len() {
            fail(&format!(
                "seed {seed}: expected {} membership events, saw {events}",
                2 * STORM.len()
            ));
        }

        // 3. Live engine: same storm as tick-scoped peer-down windows.
        let ecfg = EngineConfig {
            consumers: 4,
            batch_size: 2,
            loader_threads: 3,
            preproc_threads: 2,
            epochs: 2,
            seed,
            train: Duration::from_micros(100),
            crashes: cfg.crashes.clone(),
            peer_nodes: 4,
            ..EngineConfig::default()
        };
        let store = Arc::new(SyntheticStore::new(
            cfg.dataset.clone(),
            Duration::ZERO,
            0.0,
        ));
        let ins = Instruments::enabled();
        let report = run_with(store, ecfg.clone(), ins.clone());
        if report.aborted {
            fail(&format!("seed {seed}: engine aborted under the storm"));
        }
        check_engine_delivery(&cfg.dataset, &ecfg, &report, &ins).unwrap_or_else(|d| {
            eprintln!("{d}");
            fail(&format!(
                "seed {seed}: engine delivery diverged under the storm"
            ));
        });
        let want: Vec<MembershipObservable> = cfg
            .crash_plan()
            .membership_timeline(report.iterations)
            .iter()
            .map(MembershipObservable::from_event)
            .collect();
        let got: Vec<MembershipObservable> = report
            .membership
            .iter()
            .map(MembershipObservable::from_event)
            .collect();
        if got != want {
            fail(&format!(
                "seed {seed}: engine membership sequence diverged from the plan\n\
                 engine: {got:?}\n\
                 plan:   {want:?}"
            ));
        }

        println!(
            "chaos: seed {seed}: {} iterations, {events} membership events, \
             engine delivered {} — storm survived, delivery exact",
            summary.iterations, report.delivered
        );
    }

    // Optional instrumented storm run for lobster_doctor: the trace carries
    // node_crash/node_rejoin instants the doctor folds into its
    // `== membership ==` table.
    if trace_ins.is_enabled() {
        let cfg = storm_config(seeds[0], true);
        ClusterSim::new(cfg, policy_by_name("lobster").unwrap())
            .with_instruments(trace_ins.clone())
            .run_observed();
        write_observability(&trace_ins, trace_out.as_deref());
    }

    println!(
        "chaos smoke passed: {} seeds × {} crash windows in {:.2}s",
        seeds.len(),
        STORM.len(),
        t0.elapsed().as_secs_f64()
    );
}
