//! Differential conformance smoke check for CI (DESIGN.md §10).
//!
//! Drives the same seeded configurations through the analytical executor
//! (`ClusterSim`) and the independent event-driven executor
//! (`lobster_conformance::DesCluster`) and demands agreement on every
//! invariant observable — per-GPU tier splits, eviction-victim order,
//! Algorithm-1 decision sequences, prefetch counts, delivered-sample
//! multisets, and the barrier timeline to sub-microsecond. Then runs the
//! *live* engine once and replays its per-consumer delivery record against
//! the seeded schedule.
//!
//! ```sh
//! cargo run --release --bin conformance_smoke                 # 3 seeds × 3 policies
//! cargo run --release --bin conformance_smoke -- --seeds 11,12,13,14,15
//! cargo run --release --bin conformance_smoke -- --policies pytorch,dali,nopfs,lobster
//! cargo run --release --bin conformance_smoke -- --canary
//! cargo run --release --bin conformance_smoke -- --canary --mutation capacity-key-lru
//! ```
//!
//! Exit codes: `0` — all executors agree; `1` — a real divergence (a bug
//! in one of the executors; the structured report is printed). In
//! `--canary` mode the harness tests itself by flipping one §4.4 rule
//! inside the DES: `2` — every armed canary was detected (the expected,
//! deliberately non-zero outcome); `3` — a canary went undetected, i.e.
//! the harness has a blind spot.

use lobster_conformance::{
    check_engine_delivery, conformance_config, crash_conformance_config,
    elastic_conformance_config, run_boundary_canary, run_canary, run_differential,
    workload_conformance_config, workload_conformance_matrix, CanaryOutcome, Mutation,
};
use lobster_data::WorkloadSpec;
use lobster_metrics::Instruments;
use lobster_runtime::{run_with, EngineConfig, SyntheticStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("CONFORMANCE SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let t0 = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds: Vec<u64> = vec![11, 12, 13];
    let mut policies: Vec<String> = ["pytorch", "nopfs", "lobster"].map(String::from).to_vec();
    let mut canary = false;
    let mut mutations: Vec<Mutation> = Mutation::all().to_vec();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .unwrap_or_else(|| fail("--seeds needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| fail("bad seed")))
                    .collect();
            }
            "--policies" => {
                i += 1;
                policies = args
                    .get(i)
                    .unwrap_or_else(|| fail("--policies needs a comma-separated list"))
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--canary" => canary = true,
            "--mutation" => {
                i += 1;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| fail("--mutation needs a rule name"));
                mutations = vec![Mutation::by_name(name)
                    .unwrap_or_else(|| fail(&format!("unknown mutation {name:?}")))];
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }

    if canary {
        run_canary_mode(&seeds, &mutations);
    }

    // ---- Differential runs: ClusterSim vs the event-driven DES. ----
    let mut runs = 0usize;
    for &seed in &seeds {
        let cfg = conformance_config(seed);
        for policy in &policies {
            match run_differential(&cfg, policy) {
                Ok(s) => {
                    runs += 1;
                    println!(
                        "conformance: seed {seed} policy {policy}: {} iterations, \
                         {} demand accesses, {} DES events — agree",
                        s.iterations, s.demand_accesses, s.des_events
                    );
                }
                Err(d) => {
                    eprintln!("{d}");
                    fail(&format!("seed {seed} policy {policy} diverged"));
                }
            }
        }
    }

    // ---- Elastic differential runs: role-flip sequences must agree. ----
    for &seed in &seeds {
        let cfg = elastic_conformance_config(seed);
        match run_differential(&cfg, "lobster") {
            Ok(s) => {
                runs += 1;
                println!(
                    "conformance: seed {seed} elastic pool: {} iterations — \
                     role-flip sequences agree",
                    s.iterations
                );
            }
            Err(d) => {
                eprintln!("{d}");
                fail(&format!("seed {seed} elastic configuration diverged"));
            }
        }
    }

    // ---- Crash differential runs: membership sequences must agree. ----
    for &seed in &seeds {
        let cfg = crash_conformance_config(seed);
        match run_differential(&cfg, "lobster") {
            Ok(s) => {
                runs += 1;
                println!(
                    "conformance: seed {seed} crash schedule: {} iterations — \
                     membership sequences agree",
                    s.iterations
                );
            }
            Err(d) => {
                eprintln!("{d}");
                fail(&format!("seed {seed} crash configuration diverged"));
            }
        }
    }

    // ---- Workload-family differential runs: every DESIGN.md §15 family
    // (Zipf skew, heavy-tail sizes, bimodal cost, growing dataset, compute
    // drift) must agree byte-for-byte under the adaptive policy. ----
    for &seed in &seeds {
        for (family, cfg) in workload_conformance_matrix(seed) {
            match run_differential(&cfg, "lobster") {
                Ok(s) => {
                    runs += 1;
                    println!(
                        "conformance: seed {seed} workload {family}: {} iterations, \
                         {} demand accesses — agree",
                        s.iterations, s.demand_accesses
                    );
                }
                Err(d) => {
                    eprintln!("{d}");
                    fail(&format!("seed {seed} workload {family} diverged"));
                }
            }
        }
    }

    // ---- Live engine vs the seeded schedule. ----
    let dataset = lobster_data::Dataset::generate(
        "conformance-smoke",
        96,
        lobster_data::SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        seeds[0],
    );
    let ecfg = EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 2,
        preproc_threads: 2,
        epochs: 2,
        seed: seeds[0],
        train: Duration::from_micros(200),
        ..EngineConfig::default()
    };
    let store = Arc::new(SyntheticStore::new(dataset.clone(), Duration::ZERO, 0.0));
    let ins = Instruments::enabled();
    let report = run_with(store, ecfg.clone(), ins.clone());
    match check_engine_delivery(&dataset, &ecfg, &report, &ins) {
        Ok(()) => println!(
            "conformance: live engine delivered {} samples exactly as scheduled",
            report.delivered
        ),
        Err(d) => {
            eprintln!("{d}");
            fail("live engine diverged from the seeded schedule");
        }
    }

    println!(
        "conformance smoke passed: {runs} differential runs + 1 engine run in {:.2}s",
        t0.elapsed().as_secs_f64()
    );
}

/// Canary mode: arm each mutation inside the DES and demand the harness
/// notices. Exits 2 (all detected — the expected non-zero outcome) or 3
/// (blind spot).
fn run_canary_mode(seeds: &[u64], mutations: &[Mutation]) -> ! {
    let mut blind = false;
    for &m in mutations {
        let caught = if m == Mutation::HorizonOffByOne {
            // Equivalent mutant under the production 2-epoch oracle window
            // (max reachable reuse distance is 2I − h − 1, strictly inside
            // the horizon): no differential run can see it, so it is armed
            // against the model-based sweep checker on a crafted 3-epoch
            // boundary schedule instead.
            match run_boundary_canary() {
                CanaryOutcome::Detected(d) => Some(("crafted boundary schedule".to_string(), d)),
                CanaryOutcome::Undetected => None,
            }
        } else {
            // A mutation counts as detected if any seed exposes it; a single
            // seed may simply never exercise the flipped rule.
            let mut found = None;
            for &seed in seeds {
                // `never-steal` freezes the elastic controller, so it is
                // only observable on an elastic configuration, and so is
                // `detector-threshold` (the mid-run work-factor step is what
                // reliably puts anomaly firings near the mutated detectors'
                // decision boundaries); `drop-crash` ignores the crash
                // schedule, so it needs one to ignore.
                // `uniform-cost` collapses per-sample preprocessing cost to
                // the dataset mean, so it needs a non-uniform cost table to
                // be observable: the bimodal workload configuration.
                let cfg = if m == Mutation::NeverSteal || m == Mutation::DetectorThreshold {
                    elastic_conformance_config(seed)
                } else if m == Mutation::DropCrash {
                    crash_conformance_config(seed)
                } else if m == Mutation::UniformCost {
                    let bimodal = WorkloadSpec::default_for("bimodal", 192)
                        .expect("bimodal is a known workload family");
                    workload_conformance_config(&bimodal, seed)
                } else {
                    conformance_config(seed)
                };
                match run_canary(&cfg, "lobster", m) {
                    CanaryOutcome::Detected(d) => {
                        found = Some((format!("seed {seed}"), d));
                        break;
                    }
                    CanaryOutcome::Undetected => {}
                }
            }
            found
        };
        match caught {
            Some((site, d)) => {
                println!(
                    "canary {}: DETECTED at {site} — first observable effect:",
                    m.name()
                );
                println!("{d}");
            }
            None => {
                eprintln!(
                    "canary {}: UNDETECTED on seeds {seeds:?} — the harness has a blind spot",
                    m.name()
                );
                blind = true;
            }
        }
    }
    std::process::exit(if blind { 3 } else { 2 });
}
