//! Figure 4: histogram of training-sample reuse distances (in iterations)
//! on Node 1 of an 8×8-GPU ImageNet-1K run. Paper claim: "80% of the
//! training samples have the reuse distance larger than 1,000 iterations"
//! (distances are long — at least an epoch — which is what makes naive
//! prefetch-driven eviction wasteful).

use lobster_bench::{params_from_args, BenchParams, DatasetKind};
use lobster_data::{EpochSchedule, NodeOracle, ScheduleSpec};
use lobster_metrics::{LogHistogram, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Result {
    params: BenchParams,
    iterations_per_epoch: usize,
    buckets: Vec<(u64, u64)>,
    fraction_above_1000: f64,
    mean_distance: f64,
}

fn main() {
    // A wide epoch window matters here: on-node reuse gaps are geometric
    // with mean ≈ #nodes epochs, so a short window censors the long tail
    // the figure is about.
    let params = params_from_args(BenchParams {
        scale: 16,
        epochs: 12,
        seed: 42,
    });
    let dataset = DatasetKind::ImageNet1k.dataset(params.scale, params.seed);
    let spec = ScheduleSpec {
        nodes: 8,
        gpus_per_node: 8,
        batch_size: 32,
        dataset_len: dataset.len(),
        seed: params.seed,
    };
    println!(
        "Figure 4 — reuse-distance histogram, Node 1, 8x8 GPUs, ImageNet-1K (1/{} scale)\n",
        params.scale
    );

    // Distances measured over a window of epochs, exactly as the oracle
    // sees them during training.
    let epochs: Vec<EpochSchedule> = (0..params.epochs)
        .map(|e| EpochSchedule::generate(spec, e))
        .collect();
    let refs: Vec<&EpochSchedule> = epochs.iter().collect();
    let oracle = NodeOracle::build(1, &refs, 0);
    let mut hist = LogHistogram::new();
    hist.record_all(oracle.reuse_distances());

    let mut t = Table::new(["reuse distance ≤", "samples"]);
    for (bound, count) in hist.non_empty_buckets() {
        t.row([bound.to_string(), count.to_string()]);
    }
    print!("{}", t.render());

    let iters = spec.iterations_per_epoch();
    // At 1/scale the epoch is 1/scale as long; the paper's ">1000
    // iterations at full scale" threshold scales with it.
    let threshold = (1000 / params.scale as u64).max(1);
    let above = hist.fraction_above(threshold.next_power_of_two());
    println!("\niterations per epoch: {iters}");
    println!(
        "fraction of reuses with distance > {} (≈1000 at paper scale): {:.1}% (paper: ~80%)",
        threshold.next_power_of_two(),
        above * 100.0
    );

    let result = Fig4Result {
        params,
        iterations_per_epoch: iters,
        buckets: hist.non_empty_buckets(),
        fraction_above_1000: above,
        mean_distance: hist.mean().unwrap_or(0.0),
    };
    let path = ResultSink::default_location()
        .write_json("fig04_reuse_histogram", &result)
        .expect("write results");
    println!("results -> {}", path.display());
}
