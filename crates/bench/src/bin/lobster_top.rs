//! `lobster_top` — live (or one-shot) monitor over a `--telemetry-out`
//! JSONL stream (DESIGN.md §14).
//!
//! ```text
//! lobster_top <telemetry.jsonl>                      # follow the stream
//! lobster_top <telemetry.jsonl> --once               # render once, exit
//! lobster_top <telemetry.jsonl> --once --slo "gap_us<=5000;hit_rate>=0.8"
//! lobster_top <telemetry.jsonl> --once --assert-anomaly level-shift,11,13
//! ```
//!
//! The stream is the line format `Instruments::set_telemetry_out` (and
//! the bench harness's `.telemetry.jsonl` sidecar) emits: one JSON object
//! per line tagged `frame`, `anomaly`, or `slo`. Follow mode re-reads the
//! tail every `--interval-ms` (default 500) and redraws until the file
//! stops growing for `--idle-exits` rounds (default: follow forever;
//! Ctrl-C to quit).
//!
//! Flags for scripting and CI:
//!
//! - `--once` renders the current state and exits instead of following.
//! - `--slo <specs>` evaluates the §14 spec grammar over the streamed
//!   frames (`;`-separated, e.g. `gap_us<=5000@64:10`) and merges the
//!   verdicts with any `slo` lines already in the stream.
//! - `--assert-anomaly <kind>,<lo>,<hi>` exits 1 unless an anomaly of
//!   `kind` (detector label, e.g. `level-shift`) fired with
//!   `lo <= tick <= hi` — the CI hook for "the seeded fault was detected
//!   at the right tick".
//! - `--window <n>` bounds the per-tick table to the last `n` frames
//!   (default 16).
//!
//! Exit codes: `0` — rendered, every SLO passed, assertion (if any)
//! held; `1` — a violated SLO or a failed `--assert-anomaly`; `2` —
//! usage or I/O errors.

use lobster_metrics::{
    evaluate_slos, parse_slo_specs, parse_telemetry_stream, Anomaly, DetectorKind, SloSpec,
    SloVerdict, TelemetryLine, TickFrame,
};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: lobster_top <telemetry.jsonl> [--once] [--interval-ms <n>] [--idle-exits <n>]\n\
         \x20                  [--window <n>] [--slo <specs>] [--assert-anomaly <kind>,<lo>,<hi>]"
    );
    std::process::exit(2);
}

struct AnomalyAssert {
    kind: DetectorKind,
    lo: u64,
    hi: u64,
}

fn parse_assert(text: &str) -> AnomalyAssert {
    let parts: Vec<&str> = text.split(',').map(str::trim).collect();
    let bad = || -> ! {
        eprintln!("error: --assert-anomaly wants <kind>,<lo-tick>,<hi-tick>, got {text:?}");
        std::process::exit(2);
    };
    if parts.len() != 3 {
        bad();
    }
    let Some(kind) = DetectorKind::by_label(parts[0]) else {
        eprintln!(
            "error: unknown detector kind {:?} (one of: {})",
            parts[0],
            DetectorKind::ALL.map(|k| k.label()).join(", ")
        );
        std::process::exit(2);
    };
    let (Ok(lo), Ok(hi)) = (parts[1].parse::<u64>(), parts[2].parse::<u64>()) else {
        bad();
    };
    AnomalyAssert { kind, lo, hi }
}

/// Everything accumulated from the stream so far.
#[derive(Default)]
struct State {
    frames: Vec<TickFrame>,
    anomalies: Vec<Anomaly>,
    slo: Vec<SloVerdict>,
}

impl State {
    fn ingest(&mut self, lines: Vec<TelemetryLine>) {
        for line in lines {
            match line {
                TelemetryLine::Frame(f) => self.frames.push(f),
                TelemetryLine::Anomaly(a) => self.anomalies.push(a),
                TelemetryLine::Slo(v) => self.slo.push(v),
            }
        }
    }
}

fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let hi = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| BARS[((v * 7).div_ceil(hi)).min(7) as usize])
        .collect()
}

fn render(state: &State, window: usize, slo_extra: &[SloVerdict]) -> String {
    let mut out = String::new();
    let frames = &state.frames;
    let n = frames.len();
    out.push_str(&format!(
        "lobster_top — {} tick(s), {} anomaly firing(s)\n",
        n,
        state.anomalies.len()
    ));
    if let Some(last) = frames.last() {
        let s = &last.scalars;
        let hit = s.hit_pm().map_or("  n/a".to_string(), |pm| {
            format!("{:4.1}%", pm as f64 / 10.0)
        });
        out.push_str(&format!(
            "tick {:>6}  gap {:>8}µs  iter {:>8}µs  hit {hit}  workers {}p/{}l  down 0x{:x}\n",
            s.tick, s.gap_us, s.iter_us, s.preproc_workers, s.loader_workers, s.down_mask
        ));
        let tail: Vec<&TickFrame> = frames.iter().rev().take(64).rev().collect();
        let gaps: Vec<u64> = tail.iter().map(|f| f.scalars.gap_us).collect();
        let iters: Vec<u64> = tail.iter().map(|f| f.scalars.iter_us).collect();
        out.push_str(&format!("gap  {}\n", sparkline(&gaps)));
        out.push_str(&format!("iter {}\n", sparkline(&iters)));
    }

    if n > 0 {
        out.push_str(
            "\n  tick    gap_us   iter_us  local  remote   miss  prefetch  evict  retry  deliver\n",
        );
        for f in frames.iter().skip(n.saturating_sub(window)) {
            let s = &f.scalars;
            out.push_str(&format!(
                "{:>6}  {:>8}  {:>8}  {:>5}  {:>6}  {:>5}  {:>8}  {:>5}  {:>5}  {:>7}\n",
                s.tick,
                s.gap_us,
                s.iter_us,
                s.local_hits,
                s.remote_hits,
                s.misses,
                s.prefetched,
                s.evictions,
                s.retries,
                s.delivered
            ));
        }
    }

    if !state.anomalies.is_empty() {
        out.push_str("\n== anomalies (last 8) ==\n");
        let skip = state.anomalies.len().saturating_sub(8);
        for a in state.anomalies.iter().skip(skip) {
            out.push_str(&format!(
                "  tick {:>6}  {:<20} value {:>10}  baseline {:>10}  severity {}\n",
                a.tick,
                a.kind.label(),
                a.value,
                a.baseline,
                a.severity
            ));
        }
    }

    let all_slo: Vec<&SloVerdict> = state.slo.iter().chain(slo_extra).collect();
    if !all_slo.is_empty() {
        out.push_str("\n== slo ==\n");
        for v in all_slo {
            out.push_str(&format!(
                "  {:<28} {:>6} frames  {:>5} violations  burn {:>5.1}%  {}\n",
                v.spec,
                v.frames,
                v.violations,
                v.burn_pct,
                if v.pass { "PASS" } else { "FAIL" }
            ));
        }
    }
    out
}

fn read_stream(path: &PathBuf) -> State {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let lines = parse_telemetry_stream(&text).unwrap_or_else(|e| {
        eprintln!("error: malformed telemetry stream {}: {e}", path.display());
        std::process::exit(2);
    });
    let mut state = State::default();
    state.ingest(lines);
    state
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<PathBuf> = None;
    let mut once = false;
    let mut interval_ms = 500u64;
    let mut idle_exits: Option<u32> = None;
    let mut window = 16usize;
    let mut specs: Vec<SloSpec> = Vec::new();
    let mut assertion: Option<AnomalyAssert> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--once" => {
                once = true;
                i += 1;
            }
            "--interval-ms" | "--idle-exits" | "--window" | "--slo" | "--assert-anomaly" => {
                if i + 1 >= args.len() {
                    usage();
                }
                let value = &args[i + 1];
                match args[i].as_str() {
                    "--interval-ms" => {
                        interval_ms = value.parse().unwrap_or_else(|_| usage());
                    }
                    "--idle-exits" => {
                        idle_exits = Some(value.parse().unwrap_or_else(|_| usage()));
                    }
                    "--window" => window = value.parse().unwrap_or_else(|_| usage()),
                    "--slo" => {
                        specs = parse_slo_specs(value).unwrap_or_else(|e| {
                            eprintln!("error: bad --slo spec: {e}");
                            std::process::exit(2);
                        });
                    }
                    _ => assertion = Some(parse_assert(value)),
                }
                i += 2;
            }
            "--help" | "-h" => usage(),
            arg if arg.starts_with("--") => usage(),
            _ => {
                if path.replace(PathBuf::from(&args[i])).is_some() {
                    usage();
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else { usage() };

    // Follow mode: redraw whenever the stream grows; a fixed idle budget
    // (when given) bounds the loop for scripted runs.
    let mut state = read_stream(&path);
    if !once {
        let mut last_len = state.frames.len() + state.anomalies.len() + state.slo.len();
        let mut idle = 0u32;
        loop {
            let verdicts = evaluate_slos(&specs, &state.frames);
            // ANSI clear-and-home keeps the redraw in place on a TTY.
            print!("\x1b[2J\x1b[H{}", render(&state, window, &verdicts));
            use std::io::Write;
            let _ = std::io::stdout().flush();
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            state = read_stream(&path);
            let len = state.frames.len() + state.anomalies.len() + state.slo.len();
            if len == last_len {
                idle += 1;
                if idle_exits.is_some_and(|n| idle >= n) {
                    break;
                }
            } else {
                idle = 0;
                last_len = len;
            }
        }
    }

    let verdicts = evaluate_slos(&specs, &state.frames);
    print!("{}", render(&state, window, &verdicts));

    let mut failed = false;
    if state.slo.iter().chain(&verdicts).any(|v| !v.pass) {
        eprintln!("lobster_top: violated SLO");
        failed = true;
    }
    if let Some(a) = &assertion {
        let hit = state
            .anomalies
            .iter()
            .find(|x| x.kind == a.kind && (a.lo..=a.hi).contains(&x.tick));
        match hit {
            Some(x) => println!(
                "assert-anomaly: {} fired at tick {} (wanted {}..={})",
                a.kind.label(),
                x.tick,
                a.lo,
                a.hi
            ),
            None => {
                eprintln!(
                    "lobster_top: no {} anomaly in ticks {}..={} ({} firing(s) total)",
                    a.kind.label(),
                    a.lo,
                    a.hi,
                    state.anomalies.len()
                );
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
