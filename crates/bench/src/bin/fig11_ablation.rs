//! Figure 11: ablation study — *Lobster_th* (thread management only),
//! *Lobster_evict* (reuse-distance eviction only), and full Lobster, as
//! training-time speedup over DALI, per model (single node × 8 GPUs,
//! ImageNet-1K).
//!
//! Paper shape: thread management contributes more than eviction (up to
//! 1.4×, 1.3× on average, vs ~1.15× for eviction alone); eviction helps
//! *small* models relatively more (their training stage hides less I/O);
//! full Lobster beats both halves.

use lobster_bench::{paper_config, params_from_args, run_policy, BenchParams, DatasetKind};
use lobster_core::models::all_models;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_speedup, ResultSink, Table};
use serde::Serialize;

const VARIANTS: [&str; 4] = ["dali", "lobster_th", "lobster_evict", "lobster"];

#[derive(Serialize)]
struct Fig11Result {
    params: BenchParams,
    /// model -> (variant -> speedup over DALI)
    rows: Vec<(String, Vec<(String, f64)>)>,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 4,
        seed: 42,
    });
    println!(
        "Figure 11 — ablation vs DALI, 1 node x 8 GPUs, ImageNet-1K (1/{} scale)\n",
        params.scale
    );

    let mut rows = Vec::new();
    let mut t = Table::new(["model", "lobster_th", "lobster_evict", "lobster"]);
    for model in all_models() {
        let epoch_s: Vec<(String, f64)> = VARIANTS
            .iter()
            .map(|&name| {
                let report = run_policy(
                    paper_config(DatasetKind::ImageNet1k, 1, model.clone(), params),
                    policy_by_name(name).unwrap(),
                );
                (name.to_string(), report.mean_epoch_s())
            })
            .collect();
        let dali = epoch_s[0].1;
        let speedups: Vec<(String, f64)> =
            epoch_s.iter().map(|(n, s)| (n.clone(), dali / s)).collect();
        t.row([
            model.name.clone(),
            fmt_speedup(speedups[1].1),
            fmt_speedup(speedups[2].1),
            fmt_speedup(speedups[3].1),
        ]);
        rows.push((model.name.clone(), speedups));
    }
    print!("{}", t.render());

    let result = Fig11Result { params, rows };
    let path = ResultSink::default_location()
        .write_json("fig11_ablation", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}
