//! Figure 8: load-imbalance reduction.
//!
//! (a) single node × 8 GPUs, ImageNet-22K: iterations with load imbalance
//!     per epoch, all four loaders;
//! (b) 8 nodes × 8 GPUs, same;
//! (c) batch-time distribution, ResNet-50 + ImageNet-1K, single node.
//!
//! Paper shape: Lobster has the fewest imbalanced iterations (17.5% single
//! node / 22.8% multi-node remain), reducing them vs PyTorch/DALI/NoPFS by
//! roughly 31/16/8 points (single node) and 35/26/10 (multi-node); its
//! batch times are shorter with less variance.

use lobster_bench::{
    observability_from_args, paper_config, params_from_args, run_policy_with, write_observability,
    BenchParams, DatasetKind, BASELINE_NAMES,
};
use lobster_core::models::resnet50;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_pct, Instruments, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct ImbalanceRow {
    policy: String,
    imbalance_fraction: f64,
    /// Mean per-iteration straggler spread in ms — differentiates loaders
    /// even when the count saturates at cluster scale.
    mean_spread_ms: f64,
    per_epoch_imbalanced: Vec<u64>,
}

#[derive(Serialize)]
struct BatchTimeRow {
    policy: String,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cov: f64,
}

#[derive(Serialize)]
struct Fig8Result {
    params: BenchParams,
    single_node: Vec<ImbalanceRow>,
    multi_node: Vec<ImbalanceRow>,
    batch_times_1k: Vec<BatchTimeRow>,
}

fn imbalance_sweep(
    kind: DatasetKind,
    nodes: usize,
    params: BenchParams,
    ins: &Instruments,
) -> Vec<ImbalanceRow> {
    let mut rows = Vec::new();
    let mut t = Table::new([
        "loader",
        "imbalanced iterations",
        "mean spread",
        "per-epoch counts",
    ]);
    for name in BASELINE_NAMES {
        let report = run_policy_with(
            paper_config(kind, nodes, resnet50(), params),
            policy_by_name(name).unwrap(),
            ins,
        );
        let steady = report.steady_epochs();
        let per_epoch: Vec<u64> = steady.iter().map(|e| e.imbalanced_iterations).collect();
        let spread_ms =
            steady.iter().map(|e| e.mean_spread_s).sum::<f64>() / steady.len() as f64 * 1e3;
        t.row([
            name.to_string(),
            fmt_pct(report.imbalance_fraction()),
            format!("{spread_ms:.1}ms"),
            format!("{per_epoch:?}"),
        ]);
        rows.push(ImbalanceRow {
            policy: name.to_string(),
            imbalance_fraction: report.imbalance_fraction(),
            mean_spread_ms: spread_ms,
            per_epoch_imbalanced: per_epoch,
        });
    }
    print!("{}", t.render());
    println!();
    rows
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 6,
        seed: 42,
    });
    let (ins, trace_out) = observability_from_args();
    println!(
        "Figure 8 — load imbalance (scale 1/{}, {} epochs)\n",
        params.scale, params.epochs
    );

    println!("-- (a) 1 node x 8 GPUs, ImageNet-22K --");
    let single_node = imbalance_sweep(DatasetKind::ImageNet22k, 1, params, &ins);

    println!("-- (b) 8 nodes x 8 GPUs, ImageNet-22K --");
    let multi_node = imbalance_sweep(DatasetKind::ImageNet22k, 8, params, &ins);

    println!("-- (c) batch-time distribution, 1 node x 8 GPUs, ImageNet-1K --");
    let mut batch_rows = Vec::new();
    let mut t = Table::new(["loader", "mean", "p50", "p95", "p99", "cov"]);
    for name in BASELINE_NAMES {
        let report = run_policy_with(
            paper_config(DatasetKind::ImageNet1k, 1, resnet50(), params),
            policy_by_name(name).unwrap(),
            &ins,
        );
        // Pool steady-state batch times.
        let mut all = lobster_metrics::Summary::new();
        for e in report.steady_epochs() {
            all.record_all(e.batch_times.values().iter().copied());
        }
        let row = BatchTimeRow {
            policy: name.to_string(),
            mean_ms: all.mean() * 1e3,
            p50_ms: all.percentile(50.0) * 1e3,
            p95_ms: all.percentile(95.0) * 1e3,
            p99_ms: all.percentile(99.0) * 1e3,
            cov: all.cov(),
        };
        t.row([
            name.to_string(),
            format!("{:.1}ms", row.mean_ms),
            format!("{:.1}ms", row.p50_ms),
            format!("{:.1}ms", row.p95_ms),
            format!("{:.1}ms", row.p99_ms),
            format!("{:.2}", row.cov),
        ]);
        batch_rows.push(row);
    }
    print!("{}", t.render());

    let result = Fig8Result {
        params,
        single_node,
        multi_node,
        batch_times_1k: batch_rows,
    };
    let path = ResultSink::default_location()
        .write_json("fig08_load_imbalance", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
    write_observability(&ins, trace_out.as_deref());
}
