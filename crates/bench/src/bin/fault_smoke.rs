//! Fast fault-matrix smoke check for CI (DESIGN.md §8).
//!
//! Runs the *live* engine at a small, fixed scale under every fault class
//! at once — transient errors, payload corruption, stalls, worker-poisoning
//! panics, and a mid-run step slowdown — and verifies that the run
//! completes (no hang, no abort) with the exact schedule-determined
//! integrity fingerprint and non-zero recovery counters. Then replays a
//! tiny simulator config with a time-varying straggler to cover the
//! modelled path. Exits non-zero on any violation; CI wraps it in a hard
//! timeout so a deadlock fails fast instead of stalling the pipeline.
//!
//! ```sh
//! cargo run --release --bin fault_smoke          # defaults
//! cargo run --release --bin fault_smoke -- --faults transient=0.2,seed=7
//! ```

use lobster_bench::faults_from_args;
use lobster_core::policy_by_name;
use lobster_metrics::Instruments;
use lobster_pipeline::ConfigBuilder;
use lobster_runtime::{expected_integrity, run_with, EngineConfig, SyntheticStore};
use lobster_storage::{FaultSpec, SlowdownProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("FAULT SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let t0 = Instant::now();

    // ---- Live engine under the full fault matrix. ----
    let spec = faults_from_args(
        FaultSpec::parse(
            "transient=0.08,corrupt=0.03,stall=0.03,stall-ms=2,poison=0.01,seed=20220822,\
             slow=0:step:2:0.2",
        )
        .expect("default smoke spec parses"),
    );
    println!("fault smoke: engine spec {spec:?}");
    let dataset = lobster_data::Dataset::generate(
        "fault-smoke",
        128,
        lobster_data::SizeDistribution::Constant { bytes: 4_000 },
        5,
    );
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 8,
        loader_threads: 2,
        preproc_threads: 2,
        epochs: 2,
        seed: 20220822,
        train: Duration::from_micros(200),
        // `crash@<tick>:node=<n>[,rejoin=<tick>]` terms in the --faults
        // spec become tick-scoped peer-down windows inside the engine.
        crashes: spec.crashes.clone(),
        peer_nodes: spec
            .crashes
            .iter()
            .map(|c| (c.node as usize + 1).max(2))
            .max()
            .unwrap_or(0),
        ..EngineConfig::default()
    };
    let expected = expected_integrity(&dataset, &cfg);
    let plan = match spec.compile() {
        Ok(p) => p,
        Err(e) => fail(&format!("fault spec rejected: {e}")),
    };
    let injecting = !plan.is_noop();
    let store = Arc::new(SyntheticStore::with_faults(
        dataset,
        Duration::from_micros(50),
        500e6,
        plan,
    ));
    let ins = Instruments::enabled();
    let report = run_with(Arc::clone(&store), cfg, ins.clone());
    println!(
        "engine: delivered={} retries={} corruptions={} deadlines={} panics={} aborted={}",
        report.delivered,
        report.retries,
        report.corruptions_detected,
        report.deadline_exceeded,
        report.worker_panics,
        report.aborted,
    );
    if report.aborted {
        fail("engine aborted instead of healing");
    }
    if report.integrity != expected {
        fail(&format!(
            "integrity fingerprint {:#x} != schedule-determined {:#x}",
            report.integrity, expected
        ));
    }
    if injecting {
        let injected = store.injected();
        if injected.transients > 0 && report.retries == 0 {
            fail("transient faults injected but zero retries recorded");
        }
        if injected.corruptions > 0 && report.corruptions_detected != injected.corruptions {
            fail("corrupted payloads escaped checksum verification");
        }
        if injected.poisons > 0 && report.worker_panics != injected.poisons {
            fail("poisoned workers were not all contained");
        }
        let snap = ins.metrics_snapshot();
        if injected.transients > 0 && snap.get("engine.retries").unwrap_or(0) == 0 {
            fail("engine.retries counter not exported");
        }
    }

    // ---- Simulator with a time-varying straggler. ----
    let dataset = lobster_data::imagenet_1k(512, 3);
    let cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(4)
        .cache_bytes(dataset.total_bytes() / 4)
        .epochs(2)
        .dataset(dataset)
        .try_slow_node_profile(
            1,
            SlowdownProfile::Flap {
                period_s: 5.0,
                lo: 1.0,
                hi: 2.0,
            },
        )
        .expect("valid profile")
        .build();
    let sim_report = lobster_pipeline::ClusterSim::new(cfg, policy_by_name("lobster").unwrap())
        .run()
        .0;
    if sim_report.mean_epoch_s() <= 0.0 {
        fail("simulator run under flapping straggler produced no epochs");
    }
    println!(
        "sim: mean epoch {:.3}s under flapping node-1 straggler",
        sim_report.mean_epoch_s()
    );

    println!("fault smoke passed in {:.2?}", t0.elapsed());
}
