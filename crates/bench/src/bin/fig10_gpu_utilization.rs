//! Figure 10: GPU utilization across the six DNN models (single node × 8
//! GPUs, ImageNet-1K, four loaders). Paper shape for ResNet-50:
//! 52.3% (PyTorch), 57.5% (DALI), 72.4% (NoPFS), 76.1% (Lobster); smaller
//! models show lower utilization for every loader (training hides less of
//! the I/O).

use lobster_bench::{
    paper_config, params_from_args, run_policy, BenchParams, DatasetKind, BASELINE_NAMES,
};
use lobster_core::models::all_models;
use lobster_core::policy_by_name;
use lobster_metrics::{fmt_pct, ResultSink, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Result {
    params: BenchParams,
    /// model -> (policy -> utilization)
    rows: Vec<(String, Vec<(String, f64)>)>,
}

fn main() {
    let params = params_from_args(BenchParams {
        scale: 64,
        epochs: 4,
        seed: 42,
    });
    println!(
        "Figure 10 — GPU utilization, 1 node x 8 GPUs, ImageNet-1K (1/{} scale)\n",
        params.scale
    );

    let mut rows = Vec::new();
    let mut t = Table::new(["model", "pytorch", "dali", "nopfs", "lobster"]);
    for model in all_models() {
        let mut per_policy = Vec::new();
        for name in BASELINE_NAMES {
            let report = run_policy(
                paper_config(DatasetKind::ImageNet1k, 1, model.clone(), params),
                policy_by_name(name).unwrap(),
            );
            per_policy.push((name.to_string(), report.mean_gpu_utilization()));
        }
        t.row([
            model.name.clone(),
            fmt_pct(per_policy[0].1),
            fmt_pct(per_policy[1].1),
            fmt_pct(per_policy[2].1),
            fmt_pct(per_policy[3].1),
        ]);
        rows.push((model.name.clone(), per_policy));
    }
    print!("{}", t.render());

    let result = Fig10Result { params, rows };
    let path = ResultSink::default_location()
        .write_json("fig10_gpu_utilization", &result)
        .expect("write results");
    println!("\nresults -> {}", path.display());
}
