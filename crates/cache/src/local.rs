//! The node-local sample cache.
//!
//! One instance models the 40 GB DRAM cache each compute node dedicates to
//! training samples (paper §5.1). Capacity is in bytes; victims are chosen
//! through a priority index so that every strategy the evaluation compares —
//! LRU (PyTorch/DALI-style), FIFO, never-evict (MinIO-style), and Lobster's
//! farthest-next-reuse — runs in O(log n) per operation.
//!
//! The eviction *mechanism* lives here; the eviction *policy decisions*
//! (what priority to assign, what to pin, what to proactively drop) are made
//! by the loader policies in `lobster-core`.

use lobster_data::SampleId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// How victims are ordered when space is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictOrder {
    /// Evict the entry with the *smallest* priority key first. Priorities
    /// are assigned by the caller:
    /// * LRU: key = last-access stamp (stale first);
    /// * FIFO: key = insertion stamp;
    /// * farthest-reuse: key = `u64::MAX − next_use_iteration`, so samples
    ///   never reused (key 0) go first and near-future samples go last.
    SmallestKeyFirst,
    /// Never evict: inserts fail when the cache is full (MinIO baseline:
    /// "once data samples are cached, they are never evicted").
    NeverEvict,
}

/// Counters exposed for the evaluation's cache-efficiency metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub inserts: u64,
    pub evictions: u64,
    /// Inserts rejected (full + unevictable, or sample larger than capacity).
    pub rejected: u64,
    /// Explicit removals by policy (reuse-count / reuse-distance evictions).
    pub proactive_evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    key: u64,
    pinned: bool,
}

/// A capacity-bounded cache of samples with a priority-indexed victim order.
///
/// ```
/// use lobster_cache::{EvictOrder, NodeCache};
/// use lobster_data::SampleId;
///
/// let mut cache = NodeCache::new(250, EvictOrder::SmallestKeyFirst);
/// cache.insert(SampleId(1), 100, 10); // key 10: evicted first
/// cache.insert(SampleId(2), 100, 20);
/// let out = cache.insert(SampleId(3), 100, 30); // needs room
/// assert_eq!(out.evicted, vec![SampleId(1)]);
/// assert!(cache.used_bytes() <= 250);
/// ```
#[derive(Debug, Clone)]
pub struct NodeCache {
    capacity: u64,
    used: u64,
    order: EvictOrder,
    entries: HashMap<u32, Entry>,
    /// Victim index: (key, sample). Pinned entries stay in the index and are
    /// skipped during the victim scan (pinning is rare and short-lived).
    index: BTreeSet<(u64, u32)>,
    stats: CacheStats,
}

/// Result of an insert attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// True if the sample now resides in the cache.
    pub inserted: bool,
    /// Samples evicted to make room (empty unless `inserted`).
    pub evicted: Vec<SampleId>,
}

impl NodeCache {
    pub fn new(capacity_bytes: u64, order: EvictOrder) -> NodeCache {
        NodeCache {
            capacity: capacity_bytes,
            used: 0,
            order,
            entries: HashMap::new(),
            index: BTreeSet::new(),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    #[inline]
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    pub fn contains(&self, s: SampleId) -> bool {
        self.entries.contains_key(&s.0)
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Insert `s` with the given priority key, evicting as needed. If `s` is
    /// already present this just updates its key. Returns what happened.
    pub fn insert(&mut self, s: SampleId, bytes: u64, key: u64) -> InsertOutcome {
        if self.entries.contains_key(&s.0) {
            self.set_key(s, key);
            return InsertOutcome {
                inserted: true,
                evicted: Vec::new(),
            };
        }
        if bytes > self.capacity {
            self.stats.rejected += 1;
            return InsertOutcome {
                inserted: false,
                evicted: Vec::new(),
            };
        }
        let mut evicted = Vec::new();
        while self.used + bytes > self.capacity {
            match self.order {
                EvictOrder::NeverEvict => {
                    self.stats.rejected += 1;
                    return InsertOutcome {
                        inserted: false,
                        evicted,
                    };
                }
                EvictOrder::SmallestKeyFirst => match self.pick_victim() {
                    Some(victim) => {
                        self.remove_internal(victim);
                        self.stats.evictions += 1;
                        evicted.push(victim);
                    }
                    None => {
                        // Everything remaining is pinned.
                        self.stats.rejected += 1;
                        return InsertOutcome {
                            inserted: false,
                            evicted,
                        };
                    }
                },
            }
        }
        self.entries.insert(
            s.0,
            Entry {
                bytes,
                key,
                pinned: false,
            },
        );
        self.index.insert((key, s.0));
        self.used += bytes;
        self.stats.inserts += 1;
        InsertOutcome {
            inserted: true,
            evicted,
        }
    }

    fn pick_victim(&self) -> Option<SampleId> {
        self.index
            .iter()
            .find(|&&(_, id)| !self.entries.get(&id).map(|e| e.pinned).unwrap_or(false))
            .map(|&(_, id)| SampleId(id))
    }

    /// The current would-be victim (without evicting).
    pub fn peek_victim(&self) -> Option<SampleId> {
        match self.order {
            EvictOrder::NeverEvict => None,
            EvictOrder::SmallestKeyFirst => self.pick_victim(),
        }
    }

    /// Priority key of a resident sample.
    pub fn key_of(&self, s: SampleId) -> Option<u64> {
        self.entries.get(&s.0).map(|e| e.key)
    }

    /// Update the priority key of a resident sample (e.g. LRU touch, or a
    /// new next-use distance after an access). No-op if absent.
    pub fn set_key(&mut self, s: SampleId, key: u64) {
        if let Some(e) = self.entries.get_mut(&s.0) {
            if e.key != key {
                self.index.remove(&(e.key, s.0));
                e.key = key;
                self.index.insert((key, s.0));
            }
        }
    }

    /// Pin a resident sample so capacity eviction skips it. No-op if absent.
    pub fn pin(&mut self, s: SampleId) {
        if let Some(e) = self.entries.get_mut(&s.0) {
            e.pinned = true;
        }
    }

    /// Unpin a sample. No-op if absent.
    pub fn unpin(&mut self, s: SampleId) {
        if let Some(e) = self.entries.get_mut(&s.0) {
            e.pinned = false;
        }
    }

    fn remove_internal(&mut self, s: SampleId) -> bool {
        if let Some(e) = self.entries.remove(&s.0) {
            self.index.remove(&(e.key, s.0));
            self.used -= e.bytes;
            true
        } else {
            false
        }
    }

    /// Explicit (policy-driven) eviction; counts as proactive. Returns true
    /// if the sample was resident.
    pub fn evict(&mut self, s: SampleId) -> bool {
        let removed = self.remove_internal(s);
        if removed {
            self.stats.proactive_evictions += 1;
        }
        removed
    }

    /// Iterate resident samples in victim order (smallest key first),
    /// including pinned entries. Used by tests and diagnostics.
    pub fn iter_victim_order(&self) -> impl Iterator<Item = (SampleId, u64)> + '_ {
        self.index.iter().map(|&(k, id)| (SampleId(id), k))
    }

    /// Drop every entry at once — the node crashed and its DRAM contents
    /// are gone. Unlike eviction this is not a policy decision, so it
    /// counts under neither `evictions` nor `proactive_evictions`. Returns
    /// how many entries were lost.
    pub fn wipe(&mut self) -> usize {
        let lost = self.entries.len();
        self.entries.clear();
        self.index.clear();
        self.used = 0;
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SampleId {
        SampleId(i)
    }

    #[test]
    fn insert_until_full_then_evict_smallest_key() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        assert!(c.insert(s(1), 40, 10).inserted);
        assert!(c.insert(s(2), 40, 20).inserted);
        // Needs 40, only 20 free → evicts key 10 (sample 1).
        let out = c.insert(s(3), 40, 30);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![s(1)]);
        assert!(!c.contains(s(1)));
        assert!(c.contains(s(2)) && c.contains(s(3)));
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn never_evict_rejects_when_full() {
        let mut c = NodeCache::new(100, EvictOrder::NeverEvict);
        assert!(c.insert(s(1), 60, 0).inserted);
        let out = c.insert(s(2), 60, 0);
        assert!(!out.inserted);
        assert!(out.evicted.is_empty());
        assert_eq!(c.stats().rejected, 1);
        assert!(c.contains(s(1)));
    }

    #[test]
    fn oversized_sample_is_rejected_outright() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        assert!(!c.insert(s(1), 101, 0).inserted);
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(1), 50, 1); // smallest key → natural victim
        c.insert(s(2), 50, 2);
        c.pin(s(1));
        let out = c.insert(s(3), 50, 3);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![s(2)], "pinned s1 must be skipped");
        assert!(c.contains(s(1)));
    }

    #[test]
    fn all_pinned_blocks_insert() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(1), 100, 1);
        c.pin(s(1));
        let out = c.insert(s(2), 10, 2);
        assert!(!out.inserted);
        assert!(c.contains(s(1)));
        c.unpin(s(1));
        assert!(c.insert(s(2), 10, 2).inserted);
    }

    #[test]
    fn set_key_reorders_victims() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(1), 50, 1);
        c.insert(s(2), 50, 2);
        assert_eq!(c.peek_victim(), Some(s(1)));
        c.set_key(s(1), 10); // LRU touch
        assert_eq!(c.peek_victim(), Some(s(2)));
        assert_eq!(c.key_of(s(1)), Some(10));
    }

    #[test]
    fn reinserting_updates_key_without_duplication() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(1), 50, 1);
        let out = c.insert(s(1), 50, 9);
        assert!(out.inserted);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.key_of(s(1)), Some(9));
    }

    #[test]
    fn explicit_evict_counts_proactive() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(1), 50, 1);
        assert!(c.evict(s(1)));
        assert!(!c.evict(s(1)));
        assert_eq!(c.stats().proactive_evictions, 1);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn multi_eviction_frees_enough_space() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        for i in 0..10 {
            c.insert(s(i), 10, i as u64);
        }
        let out = c.insert(s(99), 35, 100);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![s(0), s(1), s(2), s(3)]);
        assert_eq!(c.used_bytes(), 95);
    }

    #[test]
    fn victim_order_iterates_ascending_keys() {
        let mut c = NodeCache::new(100, EvictOrder::SmallestKeyFirst);
        c.insert(s(3), 10, 30);
        c.insert(s(1), 10, 10);
        c.insert(s(2), 10, 20);
        let order: Vec<u64> = c.iter_victim_order().map(|(_, k)| k).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }
}
