//! # lobster-cache
//!
//! Distributed-caching substrate for the Lobster reproduction:
//!
//! * [`local`] — the per-node, capacity-bounded sample cache with a
//!   priority-indexed victim order (mechanism for LRU / FIFO / never-evict /
//!   farthest-reuse strategies).
//! * [`directory`] — cluster-wide replica locations, backing remote-cache
//!   routing and the "never evict the last copy" guard of §4.4.
//!
//! Policy decisions (what to prefetch, what to pin, when to proactively
//! evict) live in `lobster-core`; this crate provides the state they act on.

pub mod directory;
pub mod local;

pub use directory::{Directory, MAX_NODES};
pub use local::{CacheStats, EvictOrder, InsertOutcome, NodeCache};
