//! The distributed cache directory: which nodes currently hold which sample.
//!
//! The paper's online runtime has a "distribution manager" that serves
//! locally cached samples to remote nodes over MPI. The directory is the
//! metadata half of that: replica locations, used (1) to route a fetch to a
//! remote cache instead of the PFS, and (2) to enforce the reuse-count
//! eviction guard — a sample is not dropped "unless no other node in the
//! group holds a copy" (§4.4).
//!
//! Nodes are limited to 64 so holder sets fit in one `u64` bitmask; the
//! paper's largest configuration is 8 nodes.

use lobster_data::SampleId;
use std::collections::HashMap;

/// Maximum nodes representable by the bitmask directory.
pub const MAX_NODES: usize = 64;

/// Replica locations for every cached sample, cluster-wide.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    holders: HashMap<u32, u64>,
}

impl Directory {
    pub fn new(nodes: usize) -> Directory {
        assert!(
            (1..=MAX_NODES).contains(&nodes),
            "directory supports 1..=64 nodes"
        );
        Directory {
            holders: HashMap::new(),
        }
    }

    /// Record that `node` now holds `s`.
    pub fn add(&mut self, s: SampleId, node: usize) {
        debug_assert!(node < MAX_NODES);
        *self.holders.entry(s.0).or_insert(0) |= 1u64 << node;
    }

    /// Record that `node` dropped `s`.
    pub fn remove(&mut self, s: SampleId, node: usize) {
        debug_assert!(node < MAX_NODES);
        if let Some(mask) = self.holders.get_mut(&s.0) {
            *mask &= !(1u64 << node);
            if *mask == 0 {
                self.holders.remove(&s.0);
            }
        }
    }

    /// Does `node` hold `s`?
    pub fn holds(&self, s: SampleId, node: usize) -> bool {
        self.holders
            .get(&s.0)
            .map(|m| m & (1u64 << node) != 0)
            .unwrap_or(false)
    }

    /// Number of nodes holding `s`.
    pub fn replica_count(&self, s: SampleId) -> u32 {
        self.holders.get(&s.0).map(|m| m.count_ones()).unwrap_or(0)
    }

    /// Does any node *other than* `node` hold `s`? (The eviction guard.)
    pub fn held_elsewhere(&self, s: SampleId, node: usize) -> bool {
        self.holders
            .get(&s.0)
            .map(|m| m & !(1u64 << node) != 0)
            .unwrap_or(false)
    }

    /// Pick a remote holder of `s` for `asking_node` to fetch from.
    /// Deterministic: rotates by sample id so load spreads across replicas
    /// without randomness.
    pub fn pick_remote(&self, s: SampleId, asking_node: usize) -> Option<usize> {
        let mask = self.holders.get(&s.0)? & !(1u64 << asking_node);
        if mask == 0 {
            return None;
        }
        let count = mask.count_ones();
        let skip = s.0 % count;
        let mut m = mask;
        for _ in 0..skip {
            m &= m - 1; // clear lowest set bit
        }
        Some(m.trailing_zeros() as usize)
    }

    /// Number of distinct samples cached anywhere.
    pub fn distinct_samples(&self) -> usize {
        self.holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SampleId {
        SampleId(i)
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut d = Directory::new(4);
        d.add(s(7), 2);
        assert!(d.holds(s(7), 2));
        assert!(!d.holds(s(7), 1));
        assert_eq!(d.replica_count(s(7)), 1);
        d.remove(s(7), 2);
        assert!(!d.holds(s(7), 2));
        assert_eq!(d.replica_count(s(7)), 0);
        assert_eq!(d.distinct_samples(), 0);
    }

    #[test]
    fn held_elsewhere_ignores_self() {
        let mut d = Directory::new(4);
        d.add(s(1), 0);
        assert!(!d.held_elsewhere(s(1), 0));
        assert!(d.held_elsewhere(s(1), 3));
        d.add(s(1), 2);
        assert!(d.held_elsewhere(s(1), 0));
    }

    #[test]
    fn pick_remote_excludes_self_and_spreads() {
        let mut d = Directory::new(8);
        d.add(s(10), 1);
        d.add(s(10), 3);
        d.add(s(10), 5);
        // Never returns the asking node, always returns a holder.
        for asker in 0..8 {
            if let Some(n) = d.pick_remote(s(10), asker) {
                assert_ne!(n, asker);
                assert!(d.holds(s(10), n));
            } else {
                panic!("replica exists, must find one");
            }
        }
        // Different sample ids rotate across replicas.
        d.add(s(11), 1);
        d.add(s(11), 3);
        d.add(s(11), 5);
        d.add(s(12), 1);
        d.add(s(12), 3);
        d.add(s(12), 5);
        let picks: std::collections::HashSet<usize> = [10u32, 11, 12]
            .iter()
            .map(|&i| d.pick_remote(s(i), 0).unwrap())
            .collect();
        assert!(
            picks.len() > 1,
            "rotation should use multiple replicas: {picks:?}"
        );
    }

    #[test]
    fn pick_remote_none_when_only_self_holds() {
        let mut d = Directory::new(2);
        d.add(s(5), 0);
        assert_eq!(d.pick_remote(s(5), 0), None);
        assert_eq!(d.pick_remote(s(99), 0), None);
    }

    #[test]
    fn idempotent_add() {
        let mut d = Directory::new(2);
        d.add(s(1), 1);
        d.add(s(1), 1);
        assert_eq!(d.replica_count(s(1)), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_nodes_rejected() {
        Directory::new(65);
    }
}
