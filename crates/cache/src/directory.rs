//! The distributed cache directory: which nodes currently hold which sample.
//!
//! The paper's online runtime has a "distribution manager" that serves
//! locally cached samples to remote nodes over MPI. The directory is the
//! metadata half of that: replica locations, used (1) to route a fetch to a
//! remote cache instead of the PFS, and (2) to enforce the reuse-count
//! eviction guard — a sample is not dropped "unless no other node in the
//! group holds a copy" (§4.4).
//!
//! Nodes are limited to 64 so holder sets fit in one `u64` bitmask; the
//! paper's largest configuration is 8 nodes.

use lobster_data::SampleId;
use std::collections::HashMap;

/// Maximum nodes representable by the bitmask directory.
pub const MAX_NODES: usize = 64;

/// Replica locations for every cached sample, cluster-wide.
///
/// The directory also tracks cluster *membership*: a crashed node's bit is
/// cleared from the `live` mask so no read path — [`Directory::pick_remote`],
/// [`Directory::held_elsewhere`], [`Directory::holds`],
/// [`Directory::replica_count`] — can ever name a dead node as a holder,
/// even if a stale holder bit were still set. [`Directory::crash_node`]
/// additionally purges the dead node's holder bits (its cache is gone), and
/// [`Directory::rejoin_node`] re-admits the node cold: live again, holding
/// nothing until it re-registers entries.
#[derive(Debug, Clone)]
pub struct Directory {
    holders: HashMap<u32, u64>,
    /// Bitmask of live nodes; a cleared bit masks every holder query.
    live: u64,
}

impl Default for Directory {
    fn default() -> Directory {
        Directory {
            holders: HashMap::new(),
            live: u64::MAX,
        }
    }
}

impl Directory {
    pub fn new(nodes: usize) -> Directory {
        assert!(
            (1..=MAX_NODES).contains(&nodes),
            "directory supports 1..=64 nodes"
        );
        Directory {
            holders: HashMap::new(),
            live: if nodes == MAX_NODES {
                u64::MAX
            } else {
                (1u64 << nodes) - 1
            },
        }
    }

    /// Record that `node` now holds `s`.
    pub fn add(&mut self, s: SampleId, node: usize) {
        debug_assert!(node < MAX_NODES);
        *self.holders.entry(s.0).or_insert(0) |= 1u64 << node;
    }

    /// Record that `node` dropped `s`.
    pub fn remove(&mut self, s: SampleId, node: usize) {
        debug_assert!(node < MAX_NODES);
        if let Some(mask) = self.holders.get_mut(&s.0) {
            *mask &= !(1u64 << node);
            if *mask == 0 {
                self.holders.remove(&s.0);
            }
        }
    }

    /// Does `node` hold `s`? Always false for a dead node.
    pub fn holds(&self, s: SampleId, node: usize) -> bool {
        self.holders
            .get(&s.0)
            .map(|m| m & self.live & (1u64 << node) != 0)
            .unwrap_or(false)
    }

    /// Number of *live* nodes holding `s`.
    pub fn replica_count(&self, s: SampleId) -> u32 {
        self.holders
            .get(&s.0)
            .map(|m| (m & self.live).count_ones())
            .unwrap_or(0)
    }

    /// Does any live node *other than* `node` hold `s`? (The eviction
    /// guard.)
    pub fn held_elsewhere(&self, s: SampleId, node: usize) -> bool {
        self.holders
            .get(&s.0)
            .map(|m| m & self.live & !(1u64 << node) != 0)
            .unwrap_or(false)
    }

    /// Pick a remote holder of `s` for `asking_node` to fetch from.
    /// Deterministic: rotates by sample id so load spreads across replicas
    /// without randomness. Never returns a dead node.
    pub fn pick_remote(&self, s: SampleId, asking_node: usize) -> Option<usize> {
        let mask = self.holders.get(&s.0)? & self.live & !(1u64 << asking_node);
        if mask == 0 {
            return None;
        }
        let count = mask.count_ones();
        let skip = s.0 % count;
        let mut m = mask;
        for _ in 0..skip {
            m &= m - 1; // clear lowest set bit
        }
        Some(m.trailing_zeros() as usize)
    }

    /// Number of distinct samples cached on any live node.
    pub fn distinct_samples(&self) -> usize {
        self.holders
            .values()
            .filter(|m| **m & self.live != 0)
            .count()
    }

    /// Is `node` a live member?
    pub fn is_live(&self, node: usize) -> bool {
        debug_assert!(node < MAX_NODES);
        self.live & (1u64 << node) != 0
    }

    /// `node` crashed: clear its live bit *and* purge every holder bit it
    /// owned (its cache contents are gone, not merely unreachable).
    /// Returns the purged samples in ascending id order, for observability.
    pub fn crash_node(&mut self, node: usize) -> Vec<SampleId> {
        debug_assert!(node < MAX_NODES);
        self.live &= !(1u64 << node);
        let bit = 1u64 << node;
        let mut purged: Vec<SampleId> = self
            .holders
            .iter()
            .filter(|(_, m)| **m & bit != 0)
            .map(|(id, _)| SampleId(*id))
            .collect();
        purged.sort();
        for s in &purged {
            self.remove(*s, node);
        }
        purged
    }

    /// `node` rejoined with a cold cache: live again, holding nothing. The
    /// holder purge already happened at crash time, so this only flips the
    /// membership bit — re-registration happens organically as the node
    /// re-caches samples.
    pub fn rejoin_node(&mut self, node: usize) {
        debug_assert!(node < MAX_NODES);
        debug_assert!(
            !self.holders.values().any(|m| m & (1u64 << node) != 0),
            "a rejoining node must not have stale holder bits"
        );
        self.live |= 1u64 << node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SampleId {
        SampleId(i)
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut d = Directory::new(4);
        d.add(s(7), 2);
        assert!(d.holds(s(7), 2));
        assert!(!d.holds(s(7), 1));
        assert_eq!(d.replica_count(s(7)), 1);
        d.remove(s(7), 2);
        assert!(!d.holds(s(7), 2));
        assert_eq!(d.replica_count(s(7)), 0);
        assert_eq!(d.distinct_samples(), 0);
    }

    #[test]
    fn held_elsewhere_ignores_self() {
        let mut d = Directory::new(4);
        d.add(s(1), 0);
        assert!(!d.held_elsewhere(s(1), 0));
        assert!(d.held_elsewhere(s(1), 3));
        d.add(s(1), 2);
        assert!(d.held_elsewhere(s(1), 0));
    }

    #[test]
    fn pick_remote_excludes_self_and_spreads() {
        let mut d = Directory::new(8);
        d.add(s(10), 1);
        d.add(s(10), 3);
        d.add(s(10), 5);
        // Never returns the asking node, always returns a holder.
        for asker in 0..8 {
            if let Some(n) = d.pick_remote(s(10), asker) {
                assert_ne!(n, asker);
                assert!(d.holds(s(10), n));
            } else {
                panic!("replica exists, must find one");
            }
        }
        // Different sample ids rotate across replicas.
        d.add(s(11), 1);
        d.add(s(11), 3);
        d.add(s(11), 5);
        d.add(s(12), 1);
        d.add(s(12), 3);
        d.add(s(12), 5);
        let picks: std::collections::HashSet<usize> = [10u32, 11, 12]
            .iter()
            .map(|&i| d.pick_remote(s(i), 0).unwrap())
            .collect();
        assert!(
            picks.len() > 1,
            "rotation should use multiple replicas: {picks:?}"
        );
    }

    #[test]
    fn pick_remote_none_when_only_self_holds() {
        let mut d = Directory::new(2);
        d.add(s(5), 0);
        assert_eq!(d.pick_remote(s(5), 0), None);
        assert_eq!(d.pick_remote(s(99), 0), None);
    }

    #[test]
    fn idempotent_add() {
        let mut d = Directory::new(2);
        d.add(s(1), 1);
        d.add(s(1), 1);
        assert_eq!(d.replica_count(s(1)), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_nodes_rejected() {
        Directory::new(65);
    }

    #[test]
    fn crash_purges_holders_and_masks_every_read_path() {
        let mut d = Directory::new(4);
        d.add(s(1), 0);
        d.add(s(1), 2);
        d.add(s(2), 2);
        let purged = d.crash_node(2);
        assert_eq!(purged, vec![s(1), s(2)]);
        assert!(!d.is_live(2));
        assert!(!d.holds(s(1), 2));
        assert!(!d.holds(s(2), 2));
        assert_eq!(d.replica_count(s(1)), 1);
        assert_eq!(d.replica_count(s(2)), 0);
        assert!(!d.held_elsewhere(s(2), 0));
        assert_eq!(d.pick_remote(s(2), 0), None);
        assert_eq!(d.pick_remote(s(1), 3), Some(0), "survivor still served");
        assert_eq!(d.distinct_samples(), 1);
    }

    #[test]
    fn membership_mask_blocks_stale_holder_bits() {
        // Even if a holder bit survived a crash (a would-be staleness bug),
        // the live mask makes the dead node unnameable. Simulate the stale
        // bit by adding after the crash.
        let mut d = Directory::new(4);
        d.crash_node(1);
        d.add(s(9), 1); // stale write from a racing path
        assert!(!d.holds(s(9), 1));
        assert!(!d.held_elsewhere(s(9), 0));
        assert_eq!(d.pick_remote(s(9), 0), None);
        assert_eq!(d.replica_count(s(9)), 0);
        assert_eq!(d.distinct_samples(), 0);
    }

    #[test]
    fn remove_then_crash_ordering_is_idempotent() {
        // Regression: an eviction sweep may `remove` a sample on the dying
        // node in the same tick that the crash purges it. Whichever order
        // the two land in, the directory ends in the same state.
        let mut d1 = Directory::new(4);
        d1.add(s(5), 1);
        d1.add(s(5), 3);
        d1.remove(s(5), 1);
        d1.crash_node(1);

        let mut d2 = Directory::new(4);
        d2.add(s(5), 1);
        d2.add(s(5), 3);
        let purged = d2.crash_node(1);
        assert_eq!(purged, vec![s(5)]);
        d2.remove(s(5), 1); // late remove after the purge: a no-op

        for d in [&d1, &d2] {
            assert!(!d.is_live(1));
            assert_eq!(d.replica_count(s(5)), 1);
            assert!(d.holds(s(5), 3));
            assert_eq!(d.pick_remote(s(5), 0), Some(3));
        }
    }

    #[test]
    fn rejoin_restores_membership_with_cold_state() {
        let mut d = Directory::new(2);
        d.add(s(1), 1);
        d.crash_node(1);
        d.rejoin_node(1);
        assert!(d.is_live(1));
        assert!(!d.holds(s(1), 1), "rejoin is cold");
        d.add(s(1), 1);
        assert!(d.holds(s(1), 1), "re-registration works after rejoin");
        assert_eq!(d.pick_remote(s(1), 0), Some(1));
    }
}
