//! Property tests for cache invariants: capacity is never exceeded, pinned
//! entries survive, the directory never loses replicas it was told about.

use lobster_cache::{Directory, EvictOrder, NodeCache};
use lobster_data::SampleId;
use proptest::prelude::*;

/// Operations a fuzzer can drive the cache with.
#[derive(Debug, Clone)]
enum Op {
    Insert { id: u32, bytes: u64, key: u64 },
    Evict { id: u32 },
    SetKey { id: u32, key: u64 },
    Pin { id: u32 },
    Unpin { id: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..64, 1u64..5_000, any::<u64>()).prop_map(|(id, bytes, key)| Op::Insert {
            id,
            bytes,
            key
        }),
        (0u32..64).prop_map(|id| Op::Evict { id }),
        (0u32..64, any::<u64>()).prop_map(|(id, key)| Op::SetKey { id, key }),
        (0u32..64).prop_map(|id| Op::Pin { id }),
        (0u32..64).prop_map(|id| Op::Unpin { id }),
    ]
}

proptest! {
    /// Under arbitrary operation sequences the cache never exceeds its
    /// capacity and its byte accounting matches a shadow model.
    #[test]
    fn cache_capacity_and_accounting_hold(
        capacity in 1_000u64..50_000,
        ops in proptest::collection::vec(op_strategy(), 1..256),
    ) {
        let mut cache = NodeCache::new(capacity, EvictOrder::SmallestKeyFirst);
        let mut shadow: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Insert { id, bytes, key } => {
                    let was_present = shadow.contains_key(&id);
                    let out = cache.insert(SampleId(id), bytes, key);
                    for v in &out.evicted {
                        shadow.remove(&v.0);
                    }
                    if out.inserted && !was_present {
                        shadow.insert(id, bytes);
                    }
                    if !out.inserted {
                        prop_assert!(!shadow.contains_key(&id));
                    }
                }
                Op::Evict { id } => {
                    let was = cache.evict(SampleId(id));
                    prop_assert_eq!(was, shadow.remove(&id).is_some());
                }
                Op::SetKey { id, key } => cache.set_key(SampleId(id), key),
                Op::Pin { id } => cache.pin(SampleId(id)),
                Op::Unpin { id } => cache.unpin(SampleId(id)),
            }
            let shadow_bytes: u64 = shadow.values().sum();
            prop_assert_eq!(cache.used_bytes(), shadow_bytes);
            prop_assert!(cache.used_bytes() <= capacity);
            prop_assert_eq!(cache.len(), shadow.len());
        }
    }

    /// Pinned entries are never chosen as capacity victims.
    #[test]
    fn pinned_entries_survive_arbitrary_pressure(
        inserts in proptest::collection::vec((0u32..256, 100u64..2_000), 8..128),
    ) {
        let mut cache = NodeCache::new(10_000, EvictOrder::SmallestKeyFirst);
        // Pin the first insert.
        cache.insert(SampleId(9999), 1_000, 0); // minimal key: natural victim
        cache.pin(SampleId(9999));
        for (i, (id, bytes)) in inserts.into_iter().enumerate() {
            cache.insert(SampleId(id), bytes, i as u64 + 1);
            prop_assert!(cache.contains(SampleId(9999)), "pinned entry evicted");
        }
    }

    /// Victim order is exactly ascending key order among unpinned entries.
    #[test]
    fn victim_order_is_key_order(
        keys in proptest::collection::hash_set(any::<u64>(), 2..32),
    ) {
        let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
        for (i, &k) in keys.iter().enumerate() {
            cache.insert(SampleId(i as u32), 1, k);
        }
        let order: Vec<u64> = cache.iter_victim_order().map(|(_, k)| k).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted);
        let mut expect: Vec<u64> = keys.into_iter().collect();
        expect.sort_unstable();
        let got: Vec<u64> = cache.iter_victim_order().map(|(_, k)| k).collect();
        prop_assert_eq!(got, expect);
    }

    /// Directory: adds/removes over random nodes keep replica counts exact.
    #[test]
    fn directory_replica_counts_are_exact(
        events in proptest::collection::vec((0u32..32, 0usize..8, any::<bool>()), 1..256),
    ) {
        let mut dir = Directory::new(8);
        let mut shadow: std::collections::HashMap<u32, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (id, node, add) in events {
            if add {
                dir.add(SampleId(id), node);
                shadow.entry(id).or_default().insert(node);
            } else {
                dir.remove(SampleId(id), node);
                if let Some(s) = shadow.get_mut(&id) {
                    s.remove(&node);
                    if s.is_empty() {
                        shadow.remove(&id);
                    }
                }
            }
            for (&sid, nodes) in &shadow {
                prop_assert_eq!(dir.replica_count(SampleId(sid)) as usize, nodes.len());
                for &n in nodes {
                    prop_assert!(dir.holds(SampleId(sid), n));
                }
            }
        }
    }

    /// pick_remote never returns the asker, always returns a real holder.
    #[test]
    fn pick_remote_is_sound(
        holders in proptest::collection::hash_set(0usize..8, 1..8),
        asker in 0usize..8,
        id in any::<u32>(),
    ) {
        let mut dir = Directory::new(8);
        for &n in &holders {
            dir.add(SampleId(id), n);
        }
        match dir.pick_remote(SampleId(id), asker) {
            Some(n) => {
                prop_assert_ne!(n, asker);
                prop_assert!(holders.contains(&n));
            }
            None => {
                // Only possible if the asker is the sole holder.
                prop_assert!(holders.len() == 1 && holders.contains(&asker));
            }
        }
    }
}
