//! Model-based cache checking driven by proptest (DESIGN.md §10): random
//! access traces replayed through `NodeCache` and the naive [`RefCache`]
//! reference in lockstep, with domain-level shrinking via [`shrink_trace`]
//! when a disagreement is found (the vendored proptest shim does not
//! shrink).

use lobster_cache::EvictOrder;
use lobster_conformance::{check_trace, shrink_trace, Op};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..48, 1u64..4_000, any::<u64>()).prop_map(|(id, bytes, key)| Op::Insert {
            id,
            bytes,
            key
        }),
        (0u32..48, any::<u64>()).prop_map(|(id, key)| Op::SetKey { id, key }),
        (0u32..48).prop_map(|id| Op::Evict { id }),
        (0u32..48).prop_map(|id| Op::Pin { id }),
        (0u32..48).prop_map(|id| Op::Unpin { id }),
    ]
}

/// On disagreement, shrink to a locally minimal trace before failing so the
/// counterexample that lands in the regression corpus report is readable.
fn check_shrunk(capacity: u64, order: EvictOrder, ops: &[Op]) {
    if let Err(first) = check_trace(capacity, order, ops) {
        let minimal = shrink_trace(ops, |t| check_trace(capacity, order, t).is_err());
        let err = check_trace(capacity, order, &minimal).unwrap_err();
        panic!(
            "cache model divergence (capacity {capacity}, {order:?})\n\
             first failure: {first}\n\
             minimal trace ({} of {} ops): {minimal:?}\n\
             minimal failure: {err}",
            minimal.len(),
            ops.len()
        );
    }
}

proptest! {
    /// `NodeCache` and the naive reference agree on every externally
    /// visible behaviour under arbitrary traces and eviction pressure.
    #[test]
    fn node_cache_conforms_to_reference_model(
        capacity in 1_000u64..20_000,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        check_shrunk(capacity, EvictOrder::SmallestKeyFirst, &ops);
    }

    /// Same conformance under the never-evict order (rejection paths).
    #[test]
    fn never_evict_cache_conforms_to_reference_model(
        capacity in 1_000u64..8_000,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        check_shrunk(capacity, EvictOrder::NeverEvict, &ops);
    }

    /// The shrinker's contract: whatever it returns still fails, is no
    /// longer than the input, and cannot drop any single op (local
    /// minimality).
    #[test]
    fn shrink_trace_returns_minimal_failing_traces(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        want in 0u32..48,
    ) {
        // A synthetic failure predicate: the trace still touches `want`.
        let fails = |t: &[Op]| {
            t.iter().any(|op| match *op {
                Op::Insert { id, .. }
                | Op::SetKey { id, .. }
                | Op::Evict { id }
                | Op::Pin { id }
                | Op::Unpin { id } => id == want,
            })
        };
        prop_assume!(fails(&ops));
        let minimal = shrink_trace(&ops, fails);
        prop_assert!(fails(&minimal));
        prop_assert!(minimal.len() <= ops.len());
        for i in 0..minimal.len() {
            let mut without: Vec<Op> = minimal.clone();
            without.remove(i);
            prop_assert!(
                without.is_empty() || !fails(&without),
                "dropping op {i} still fails: not locally minimal"
            );
        }
    }
}
