//! The differential runner: one seeded configuration, three executors.
//!
//! [`run_differential`] drives the same `ExperimentConfig` through the
//! analytical `ClusterSim` and the event-driven [`DesCluster`] and demands
//! agreement on every invariant observable. [`check_engine_delivery`]
//! closes the loop with the live engine: it replays the engine's
//! per-consumer delivery record against the seeded schedule (the engine is
//! one node of the simulated topology) and checks the cache-accounting
//! invariant `hits + misses == fetches` on the live counters.
//!
//! [`run_canary`] is the harness testing itself: it arms one deliberate
//! rule flip in the DES and reports whether the comparison caught it.

use crate::compare::{compare_runs, Divergence};
use crate::des::DesCluster;
use crate::mutation::Mutation;
use crate::refmodel::{check_sweep, horizon_boundary_fixture, naive_sweep_expectation};
use lobster_cache::{Directory, EvictOrder, NodeCache};
use lobster_core::ModelProfile;
use lobster_core::{policy_by_name, ReuseAwareEvictor, WorkEstimate};
use lobster_data::{
    Dataset, EpochSchedule, NodeOracle, SampleId, SizeDistribution, WorkloadFamily, WorkloadSpec,
};
use lobster_metrics::Instruments;
use lobster_pipeline::observe::RunObservables;
use lobster_pipeline::{ClusterSim, ConfigBuilder, ElasticSimConfig, ExperimentConfig};
use lobster_runtime::engine::{
    engine_schedule, expected_integrity, schedule_spec, EngineConfig, EngineReport,
};

/// Timing tolerance between the f64 executor and the nanosecond DES:
/// discrete observables match exactly, times to sub-microsecond.
pub const TIME_TOL_S: f64 = 1e-6;

/// Names under which the executors appear in divergence reports.
pub const SIM_MODEL: &str = "cluster-sim";
pub const DES_MODEL: &str = "conformance-des";
pub const ENGINE_MODEL: &str = "live-engine";
pub const SCHEDULE_MODEL: &str = "seeded-schedule";

/// The standard conformance configuration: small enough that a full
/// differential run takes milliseconds, sized so the caches actually evict
/// (capacity pressure) and two epochs create reuse (sweep pressure).
pub fn conformance_config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "conformance",
        192,
        SizeDistribution::Uniform {
            lo: 4_000,
            hi: 32_000,
        },
        seed,
    );
    // ~1/3 of the dataset fits per node: inserts displace residents.
    let cache_bytes = dataset.total_bytes() / 3;
    ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(4)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(2)
        .seed(seed)
        .build()
}

/// The elastic conformance configuration: the standard small topology with
/// the elastic worker-pool rule armed and a training time short enough
/// (200 µs — a deliberately tiny probe model) that the mid-run
/// preprocessing work-factor step forces the controller to steal loaders.
/// The step lands at the start of epoch 2, so the conformant controller
/// holds a steady split through epoch 1 (flips nothing) and must flip at
/// the step — exactly what the `never-steal` canary refuses to do.
pub fn elastic_conformance_config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "elastic-conformance",
        192,
        SizeDistribution::Constant { bytes: 16_384 },
        seed,
    );
    let cache_bytes = dataset.total_bytes() / 3;
    // 192 samples / (2 nodes × 2 GPUs × batch 4) = 12 iterations per epoch.
    let step_iter = 12;
    ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(4)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(2)
        .seed(seed)
        .model(ModelProfile::new("elastic-probe", 2e-4, 0.7, 10.0))
        .elastic(ElasticSimConfig {
            workers: 8,
            initial_preproc: 1,
            work_factor: 1,
            work_factor_step: Some((step_iter, 8)),
            churn: false,
            frozen: false,
            estimate: WorkEstimate::Mean,
        })
        .build()
}

/// The crash conformance configuration: the standard small topology over
/// three nodes with a scheduled whole-node crash mid-epoch-1 and a cold
/// rejoin mid-epoch-2. 192 samples / (3 nodes × 2 GPUs × batch 4) = 8
/// iterations per epoch, so tick 3 crashes node 1 with five down ticks
/// (its slice fostered onto survivors) and tick 8 — the epoch boundary —
/// re-admits it with a cold cache. Exactly-once delivery and the
/// membership-transition sequence are both exact observables on this
/// configuration (DESIGN.md §13).
pub fn crash_conformance_config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "crash-conformance",
        192,
        SizeDistribution::Uniform {
            lo: 4_000,
            hi: 32_000,
        },
        seed,
    );
    let cache_bytes = dataset.total_bytes() / 3;
    ConfigBuilder::new()
        .nodes(3)
        .gpus_per_node(2)
        .batch_size(4)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(2)
        .seed(seed)
        .try_crash_node(1, 3, Some(8))
        .expect("valid crash schedule")
        .build()
}

/// A conformance configuration for one workload family (DESIGN.md §15):
/// the family's seeded dataset (sizes + costs), its access pattern, its
/// node-drift ramps — and, for the bimodal-cost family, an elastic pool
/// whose controller runs the quantile work estimate, so the estimator
/// itself sits on the differential path. Small enough that a full
/// differential run takes milliseconds.
pub fn workload_conformance_config(w: &WorkloadSpec, seed: u64) -> ExperimentConfig {
    let dataset = w.dataset(seed);
    let cache_bytes = (dataset.total_bytes() / 3).max(1);
    let mut b = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(4)
        .pipeline_threads(8)
        .cache_bytes(cache_bytes)
        .dataset(dataset)
        .epochs(2)
        .seed(seed)
        .access(w.access());
    for (node, from, to) in w.drift_ramp(2) {
        b = b
            .try_slow_node_profile(
                node,
                lobster_storage::SlowdownProfile::Ramp {
                    from,
                    to,
                    over_s: 1.0,
                },
            )
            .expect("drift ramp is a valid profile");
    }
    if matches!(w.family, WorkloadFamily::BimodalCost { .. }) {
        b = b
            .model(ModelProfile::new("bimodal-probe", 2e-4, 0.7, 10.0))
            .elastic(ElasticSimConfig {
                workers: 8,
                initial_preproc: 1,
                work_factor: 1,
                work_factor_step: None,
                churn: false,
                frozen: false,
                estimate: WorkEstimate::Quantile(900),
            });
    }
    b.build()
}

/// The five workload families' conformance configurations at `seed`, with
/// their CLI tokens — the matrix `conformance_smoke` and `workload_smoke`
/// sweep.
pub fn workload_conformance_matrix(seed: u64) -> Vec<(&'static str, ExperimentConfig)> {
    WorkloadSpec::all_families(192)
        .iter()
        .map(|w| (w.family.token(), workload_conformance_config(w, seed)))
        .collect()
}

/// Summary of one passing differential run.
#[derive(Debug, Clone)]
pub struct DiffSummary {
    pub policy: String,
    pub seed: u64,
    pub iterations: usize,
    pub demand_accesses: u64,
    pub des_events: u64,
}

/// Run `cfg` through `ClusterSim` and the conformance DES and compare all
/// invariant observables. `Err` is the structured first divergence.
pub fn run_differential(
    cfg: &ExperimentConfig,
    policy: &str,
) -> Result<DiffSummary, Box<Divergence>> {
    let (sim_obs, des_obs, des_events) = run_both(cfg, policy, Mutation::None);
    compare_runs(SIM_MODEL, &sim_obs, DES_MODEL, &des_obs, TIME_TOL_S)?;
    Ok(DiffSummary {
        policy: policy.to_string(),
        seed: cfg.seed,
        iterations: sim_obs.iterations.len(),
        demand_accesses: sim_obs.demand_accesses(),
        des_events,
    })
}

/// Record a first divergence into `ins`'s flight recorder and trigger the
/// `conformance_divergence` dump (written only when a flight dir is
/// configured). Returns the dump path, if one was written.
pub fn record_divergence_flight(ins: &Instruments, d: &Divergence) -> Option<std::path::PathBuf> {
    ins.flight(|| lobster_metrics::FlightEvent::Divergence {
        iteration: d.iteration.unwrap_or(0),
    });
    ins.flight_dump_to_disk("conformance_divergence")
}

/// [`run_differential`] with the flight-recorder hook: the first
/// divergence, if any, is recorded into `ins` and dumped before being
/// returned to the caller.
pub fn run_differential_recorded(
    cfg: &ExperimentConfig,
    policy: &str,
    ins: &Instruments,
) -> Result<DiffSummary, Box<Divergence>> {
    run_differential(cfg, policy).inspect_err(|d| {
        record_divergence_flight(ins, d);
    })
}

/// Outcome of arming one mutation canary.
#[derive(Debug)]
pub enum CanaryOutcome {
    /// The harness caught the flipped rule; here is its first observable
    /// effect.
    Detected(Box<Divergence>),
    /// The flipped rule produced identical observables: a harness blind
    /// spot (or a configuration that never exercises the rule).
    Undetected,
}

/// Run the differential pair with `mutation` armed inside the DES and
/// report whether the comparison notices.
pub fn run_canary(cfg: &ExperimentConfig, policy: &str, mutation: Mutation) -> CanaryOutcome {
    let (sim_obs, des_obs, _) = run_both(cfg, policy, mutation);
    match compare_runs(SIM_MODEL, &sim_obs, DES_MODEL, &des_obs, TIME_TOL_S) {
        Err(d) => CanaryOutcome::Detected(d),
        Ok(()) => CanaryOutcome::Undetected,
    }
}

/// Name under which the model-based sweep checker appears in reports.
pub const SWEEP_MODEL: &str = "reuse-aware-sweep";

/// Canary for [`Mutation::HorizonOffByOne`], which is an *equivalent
/// mutant* under the production 2-epoch oracle window (the farthest
/// reachable reuse distance is `2I − h − 1`, strictly inside the horizon,
/// so a differential run cannot observe the flip). It is armed against the
/// model-based sweep checker instead, on the crafted
/// [`horizon_boundary_fixture`] whose 3-epoch window puts a swept sample's
/// next reuse exactly on the `2I − h` threshold: the conformant evictor
/// keeps it, the shrunken horizon evicts it.
pub fn run_boundary_canary() -> CanaryOutcome {
    let fx = horizon_boundary_fixture();
    let epochs: Vec<&EpochSchedule> = fx.epochs.iter().collect();
    let iters = fx.epochs[0].iterations();
    let mut oracle = NodeOracle::build(fx.node, &epochs, 0);
    let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
    let mut directory = Directory::new(fx.spec.nodes);

    // Replay the first epoch up to the boundary iteration the way the
    // executors do: demand-insert the batch, advance the oracle, sweep.
    for h in 0..=fx.h {
        let batch: Vec<SampleId> = fx.epochs[0].node_iteration(h, fx.node).to_vec();
        for &s in &batch {
            let key =
                ReuseAwareEvictor::priority_key(oracle.future_of(s).map(|f| f.next_iteration));
            if cache.insert(s, 1, key).inserted {
                directory.add(s, fx.node);
            }
        }
        oracle.advance();
        if h < fx.h {
            let mut victims = Vec::new();
            ReuseAwareEvictor.after_iteration_detailed(
                &mut cache,
                &mut directory,
                &oracle,
                fx.node,
                &batch,
                h,
                iters,
                h as u64,
                &mut victims,
            );
        }
    }

    let batch: Vec<SampleId> = fx.epochs[fx.h / iters]
        .node_iteration(fx.h % iters, fx.node)
        .to_vec();
    debug_assert!(
        batch.contains(&fx.sample),
        "fixture sample must be in the swept batch"
    );
    // The fixture must not itself break the conformant evictor.
    if let Err(e) = check_sweep(
        &epochs,
        fx.node,
        0,
        &oracle,
        &cache,
        &directory,
        &batch,
        fx.h,
        iters,
        fx.h as u64,
    ) {
        panic!("boundary fixture broke the conformant evictor: {e}");
    }

    // Recompute the sweep with the horizon shrunk by one (passing `h + 1`
    // mutates exactly the `2I − h` term of the naive model) and diff it
    // against the conformant outcome.
    let consumed = oracle.current_iteration() as usize;
    let honest = naive_sweep_expectation(
        &epochs,
        fx.node,
        0,
        consumed,
        &cache,
        &directory,
        &batch,
        fx.h,
        iters,
        fx.h as u64,
    );
    let mutated = naive_sweep_expectation(
        &epochs,
        fx.node,
        0,
        consumed,
        &cache,
        &directory,
        &batch,
        fx.h + 1,
        iters,
        fx.h as u64,
    );
    if honest == mutated {
        return CanaryOutcome::Undetected;
    }
    CanaryOutcome::Detected(Box::new(Divergence {
        lhs_model: SWEEP_MODEL.to_string(),
        rhs_model: Mutation::HorizonOffByOne.name().to_string(),
        observable: "sweep_eviction".to_string(),
        iteration: Some(fx.h as u64),
        location: format!(
            "node {}, sample {} (reuse distance == 2I − h exactly)",
            fx.node, fx.sample.0
        ),
        lhs: format!(
            "victims {:?}, kept keys {:?}",
            honest.victims, honest.kept_keys
        ),
        rhs: format!(
            "victims {:?}, kept keys {:?}",
            mutated.victims, mutated.kept_keys
        ),
    }))
}

fn run_both(
    cfg: &ExperimentConfig,
    policy: &str,
    mutation: Mutation,
) -> (RunObservables, RunObservables, u64) {
    let sim_policy = policy_by_name(policy)
        .unwrap_or_else(|| panic!("unknown policy {policy:?} (see lobster_core::policy_by_name)"));
    let des_policy = policy_by_name(policy).expect("same registry");
    let (_, sim_obs) = ClusterSim::new(cfg.clone(), sim_policy).run_observed();
    let des_run = DesCluster::new(cfg.clone(), des_policy)
        .with_mutation(mutation)
        .run();
    (sim_obs, des_run.observables, des_run.events)
}

/// Check the live engine's delivery record against the seeded schedule:
/// per-(consumer, iteration) sorted sample multisets, the end-to-end
/// integrity fingerprint, and (when `ins` is enabled) the cache-accounting
/// invariant `cache_hits + cache_misses == fetches`.
pub fn check_engine_delivery(
    dataset: &Dataset,
    cfg: &EngineConfig,
    report: &EngineReport,
    ins: &Instruments,
) -> Result<(), Box<Divergence>> {
    // First divergence lands in the flight recorder (and, with a flight
    // dir configured, on disk) before the caller sees it — the dump then
    // holds the engine's last-K events leading up to the disagreement.
    check_engine_delivery_inner(dataset, cfg, report, ins).inspect_err(|d| {
        record_divergence_flight(ins, d);
    })
}

fn check_engine_delivery_inner(
    dataset: &Dataset,
    cfg: &EngineConfig,
    report: &EngineReport,
    ins: &Instruments,
) -> Result<(), Box<Divergence>> {
    let diverge =
        |observable: &str, iteration: Option<u64>, location: String, lhs: String, rhs: String| {
            Box::new(Divergence {
                lhs_model: ENGINE_MODEL.to_string(),
                rhs_model: SCHEDULE_MODEL.to_string(),
                observable: observable.to_string(),
                iteration,
                location,
                lhs,
                rhs,
            })
        };

    if report.aborted {
        return Err(diverge(
            "run_completion",
            None,
            "run".into(),
            "aborted".into(),
            "drained full schedule".into(),
        ));
    }

    let spec = schedule_spec(dataset, cfg);
    let iters = spec.iterations_per_epoch();
    if report.delivered_samples.len() != cfg.consumers {
        return Err(diverge(
            "delivered",
            None,
            "consumer count".into(),
            format!("{}", report.delivered_samples.len()),
            format!("{}", cfg.consumers),
        ));
    }
    for epoch in 0..cfg.epochs {
        let sched = engine_schedule(spec, epoch, cfg);
        for h in 0..iters {
            let global = epoch * iters as u64 + h as u64;
            for consumer in 0..cfg.consumers {
                let mut want: Vec<u64> = sched
                    .batch(h, 0, consumer)
                    .iter()
                    .map(|s| s.0 as u64)
                    .collect();
                want.sort_unstable();
                let got = report.delivered_samples[consumer].get(global as usize);
                if got != Some(&want) {
                    return Err(diverge(
                        "delivered",
                        Some(global),
                        format!("consumer {consumer}"),
                        format!("{got:?}"),
                        format!("{want:?}"),
                    ));
                }
            }
        }
    }

    let want_integrity = expected_integrity(dataset, cfg);
    if report.integrity != want_integrity {
        return Err(diverge(
            "integrity",
            None,
            "run fingerprint".into(),
            format!("{:#018x}", report.integrity),
            format!("{want_integrity:#018x}"),
        ));
    }

    if ins.is_enabled() {
        let hits = ins.counter("engine.cache_hits").value();
        let misses = ins.counter("engine.cache_misses").value();
        let fetches = ins.counter("engine.fetches").value();
        if hits + misses != fetches {
            return Err(diverge(
                "cache_accounting",
                None,
                "hits + misses vs fetches".into(),
                format!("{hits} + {misses} = {}", hits + misses),
                format!("{fetches}"),
            ));
        }
    }
    Ok(())
}

/// Flatten the engine's delivery record into one sorted multiset per epoch
/// — the exact shape `RunObservables::delivered` uses, so an engine run can
/// be diffed against a simulator run with the same schedule parameters
/// (`W`, `B`, dataset length, seed); the epoch permutation is independent
/// of node topology.
pub fn engine_epoch_multisets(
    report: &EngineReport,
    cfg: &EngineConfig,
    iters: usize,
) -> Vec<Vec<u64>> {
    let mut out = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs as usize {
        let mut epoch_ids = Vec::new();
        for consumer in &report.delivered_samples {
            for iter_ids in consumer.iter().skip(epoch * iters).take(iters) {
                epoch_ids.extend_from_slice(iter_ids);
            }
        }
        epoch_ids.sort_unstable();
        out.push(epoch_ids);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_lobster_seed_7_agrees() {
        let cfg = conformance_config(7);
        let summary = run_differential(&cfg, "lobster").unwrap_or_else(|d| panic!("{d}"));
        assert!(summary.iterations > 0);
        assert!(summary.demand_accesses > 0);
        assert!(summary.des_events > summary.iterations as u64);
    }

    #[test]
    fn elastic_differential_agrees_and_flips_roles() {
        let cfg = elastic_conformance_config(7);
        let summary = run_differential(&cfg, "lobster").unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(summary.iterations, 24);
        // The conformant controller must actually respond to the work-factor
        // step: some tick after it carries a non-empty `flipped`.
        let sim_policy = policy_by_name("lobster").unwrap();
        let (_, obs) = ClusterSim::new(cfg, sim_policy).run_observed();
        let flips: usize = obs
            .iterations
            .iter()
            .flat_map(|it| it.role_flips.iter())
            .map(|r| r.flipped.len())
            .sum();
        assert!(flips > 0, "work-factor step must force role flips");
        for it in &obs.iterations {
            assert_eq!(it.role_flips.len(), 1, "one controller tick per iteration");
            let r = &it.role_flips[0];
            assert_eq!(
                r.loader_queues.iter().sum::<u32>() + r.preproc_after,
                8,
                "pool conserved at iteration {}",
                it.iteration
            );
        }
    }

    #[test]
    fn canary_never_steal_is_detected_on_elastic_config() {
        let cfg = elastic_conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::NeverSteal) {
            CanaryOutcome::Detected(d) => {
                assert_eq!(d.observable, "role_flips", "{d}");
            }
            CanaryOutcome::Undetected => {
                panic!("harness missed the frozen elastic controller")
            }
        }
    }

    #[test]
    fn never_steal_is_equivalent_on_non_elastic_config() {
        // Documents the canary's blind spot without an elastic pool: the
        // mutation only touches the controller, so a classic configuration
        // cannot see it — which is why `elastic_conformance_config` exists.
        let cfg = conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::NeverSteal) {
            CanaryOutcome::Undetected => {}
            CanaryOutcome::Detected(d) => {
                panic!("never-steal visible without an elastic pool: {d}")
            }
        }
    }

    #[test]
    fn canary_detector_threshold_is_detected_on_elastic_config() {
        // The 8× work-factor step at epoch 2 shifts the frame stream's
        // timing fields; the mutated thresholds (lower spike bar, shorter
        // warmup) fire differently from the standard bank on the exact same
        // frames, so the anomaly sequence — and only that — diverges.
        let cfg = elastic_conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::DetectorThreshold) {
            CanaryOutcome::Detected(d) => {
                assert_eq!(d.observable, "anomalies", "{d}");
            }
            CanaryOutcome::Undetected => {
                panic!("harness missed the mutated detector thresholds")
            }
        }
    }

    #[test]
    fn elastic_differential_fires_anomalies_in_both_executors() {
        // The anomaly conformance observable must not be vacuous: the
        // work-factor step has to actually trip a detector.
        let cfg = elastic_conformance_config(7);
        let sim_policy = policy_by_name("lobster").unwrap();
        let (_, obs) = ClusterSim::new(cfg, sim_policy).run_observed();
        assert!(
            !obs.anomalies.is_empty(),
            "work-factor step fired no detector — anomaly conformance is vacuous"
        );
    }

    #[test]
    fn crash_differential_agrees_and_preserves_delivery() {
        let cfg = crash_conformance_config(7);
        let summary = run_differential(&cfg, "lobster").unwrap_or_else(|d| panic!("{d}"));
        assert_eq!(summary.iterations, 16);
        // The crashed node's slice must still be delivered (exactly-once):
        // the per-epoch multiset is schedule-determined, crash or not.
        let sim_policy = policy_by_name("lobster").unwrap();
        let (_, obs) = ClusterSim::new(cfg.clone(), sim_policy).run_observed();
        let mut no_crash = cfg.clone();
        no_crash.crashes.clear();
        let base_policy = policy_by_name("lobster").unwrap();
        let (_, base_obs) = ClusterSim::new(no_crash, base_policy).run_observed();
        assert_eq!(obs.delivered, base_obs.delivered, "exactly-once broken");
        // And the membership sequence is exactly the compiled plan's.
        let want: Vec<_> = cfg
            .crash_plan()
            .membership_timeline(summary.iterations as u64)
            .iter()
            .map(lobster_pipeline::observe::MembershipObservable::from_event)
            .collect();
        assert_eq!(obs.membership_sequence(), want);
        assert!(!want.is_empty(), "vacuous membership sequence");
    }

    #[test]
    fn canary_drop_crash_is_detected_on_crash_config() {
        let cfg = crash_conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::DropCrash) {
            CanaryOutcome::Detected(d) => {
                assert_eq!(d.observable, "membership", "{d}");
            }
            CanaryOutcome::Undetected => {
                panic!("harness missed the dropped crash schedule")
            }
        }
    }

    #[test]
    fn drop_crash_is_equivalent_without_a_crash_schedule() {
        // Documents the canary's blind spot: without a crash schedule the
        // mutation clears an already-empty plan — which is why
        // `crash_conformance_config` exists.
        let cfg = conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::DropCrash) {
            CanaryOutcome::Undetected => {}
            CanaryOutcome::Detected(d) => {
                panic!("drop-crash visible without a crash schedule: {d}")
            }
        }
    }

    #[test]
    fn canary_skip_last_copy_guard_is_detected_for_lobster() {
        let cfg = conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::SkipLastCopyGuard) {
            CanaryOutcome::Detected(d) => {
                assert!(
                    d.observable == "evictions" || d.observable == "tier_counts",
                    "first effect should be an eviction/classification change, got {}",
                    d.observable
                );
            }
            CanaryOutcome::Undetected => panic!("harness missed the last-copy-guard flip"),
        }
    }

    #[test]
    fn boundary_canary_detects_horizon_off_by_one() {
        match run_boundary_canary() {
            CanaryOutcome::Detected(d) => {
                assert_eq!(d.observable, "sweep_eviction");
                assert_eq!(d.rhs_model, Mutation::HorizonOffByOne.name());
                assert!(d.rhs.contains("ReuseDistance"), "{d}");
            }
            CanaryOutcome::Undetected => {
                panic!("crafted boundary schedule failed to expose the shrunken horizon")
            }
        }
    }

    #[test]
    fn workload_families_differential_agrees() {
        for (token, cfg) in workload_conformance_matrix(7) {
            let summary = run_differential(&cfg, "lobster")
                .unwrap_or_else(|d| panic!("workload {token}: {d}"));
            assert!(summary.iterations > 0, "workload {token}");
            assert!(summary.demand_accesses > 0, "workload {token}");
        }
    }

    #[test]
    fn canary_uniform_cost_is_detected_on_bimodal_config() {
        let w = WorkloadSpec::default_for("bimodal", 192).unwrap();
        let cfg = workload_conformance_config(&w, 7);
        match run_canary(&cfg, "lobster", Mutation::UniformCost) {
            CanaryOutcome::Detected(d) => {
                // The wrong t_prep surfaces either directly in the pipeline
                // timing or first through the spare-time prefetch budget it
                // distorts.
                assert!(
                    d.observable == "pipe_s" || d.observable == "prefetched",
                    "first effect should be timing or prefetch budget, got {d}"
                );
            }
            CanaryOutcome::Undetected => {
                panic!("harness missed the mean-collapsed preprocessing cost")
            }
        }
    }

    #[test]
    fn uniform_cost_is_equivalent_on_unit_cost_config() {
        // Documents the canary's blind spot: on a unit-cost dataset the
        // work/byte ratio is exactly 1.0, so the collapse is invisible —
        // which is why the bimodal workload configuration exists.
        let cfg = conformance_config(7);
        match run_canary(&cfg, "lobster", Mutation::UniformCost) {
            CanaryOutcome::Undetected => {}
            CanaryOutcome::Detected(d) => {
                panic!("uniform-cost visible on a unit-cost dataset: {d}")
            }
        }
    }

    #[test]
    fn horizon_off_by_one_is_equivalent_under_production_window() {
        // Documents *why* the boundary canary exists: under the standard
        // 2-epoch window the differential runner cannot see this mutation.
        for seed in [7, 11, 23] {
            let cfg = conformance_config(seed);
            match run_canary(&cfg, "lobster", Mutation::HorizonOffByOne) {
                CanaryOutcome::Undetected => {}
                CanaryOutcome::Detected(d) => panic!(
                    "horizon flip unexpectedly visible in a differential run (seed {seed}): {d}"
                ),
            }
        }
    }
}
