//! Structured comparison of two [`RunObservables`] records.
//!
//! The comparison walks the record in execution order — per iteration:
//! Algorithm-1 decisions, tier splits, eviction events, prefetch counts,
//! then timing — and stops at the *first* divergence, reporting enough
//! context (iteration, observable, location, both values) to localise the
//! disagreement without re-running anything. Discrete observables must
//! match exactly; timing observables carry a tolerance because one
//! executor works in f64 seconds and the other in integer nanoseconds.

use lobster_pipeline::observe::RunObservables;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relative tolerance for Algorithm-1 decision floats (pure f64 math in
/// both executors; only association order may differ).
const DECISION_TOL: f64 = 1e-9;

/// The first point where two execution models disagreed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Divergence {
    /// Name of the left execution model (e.g. `cluster-sim`).
    pub lhs_model: String,
    /// Name of the right execution model (e.g. `conformance-des`).
    pub rhs_model: String,
    /// Which invariant observable disagreed (e.g. `tier_counts`).
    pub observable: String,
    /// Global iteration index, when the observable is per-iteration.
    pub iteration: Option<u64>,
    /// Finer location within the observable (GPU, node, event index...).
    pub location: String,
    /// The left model's value, rendered.
    pub lhs: String,
    /// The right model's value, rendered.
    pub rhs: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance divergence")?;
        writeln!(f, "  models:     {} vs {}", self.lhs_model, self.rhs_model)?;
        writeln!(f, "  observable: {}", self.observable)?;
        match self.iteration {
            Some(h) => writeln!(f, "  iteration:  {h}")?,
            None => writeln!(f, "  iteration:  (run-level)")?,
        }
        writeln!(f, "  location:   {}", self.location)?;
        writeln!(f, "  {:<12}{}", format!("{}:", self.lhs_model), self.lhs)?;
        write!(f, "  {:<12}{}", format!("{}:", self.rhs_model), self.rhs)
    }
}

struct Cmp<'a> {
    lhs_model: &'a str,
    rhs_model: &'a str,
    time_tol_s: f64,
}

impl<'a> Cmp<'a> {
    fn diverge<L: fmt::Debug, R: fmt::Debug>(
        &self,
        observable: &str,
        iteration: Option<u64>,
        location: String,
        lhs: L,
        rhs: R,
    ) -> Box<Divergence> {
        Box::new(Divergence {
            lhs_model: self.lhs_model.to_string(),
            rhs_model: self.rhs_model.to_string(),
            observable: observable.to_string(),
            iteration,
            location,
            lhs: format!("{lhs:?}"),
            rhs: format!("{rhs:?}"),
        })
    }

    fn times_close(&self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.time_tol_s
    }
}

fn floats_close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Compare two observable records; `Err` carries the first divergence.
///
/// `time_tol_s` bounds the allowed absolute difference on the timing
/// observables (`pipe_s`, `starts_s`, `barrier_s`); pass `0.0` to require
/// bit-exact times (only meaningful between two f64 executors).
pub fn compare_runs(
    lhs_model: &str,
    lhs: &RunObservables,
    rhs_model: &str,
    rhs: &RunObservables,
    time_tol_s: f64,
) -> Result<(), Box<Divergence>> {
    let c = Cmp {
        lhs_model,
        rhs_model,
        time_tol_s,
    };

    if lhs.iterations.len() != rhs.iterations.len() {
        return Err(c.diverge(
            "iteration_count",
            None,
            "run".into(),
            lhs.iterations.len(),
            rhs.iterations.len(),
        ));
    }

    for (a, b) in lhs.iterations.iter().zip(&rhs.iterations) {
        let h = a.iteration;
        if a.iteration != b.iteration {
            return Err(c.diverge(
                "iteration_index",
                Some(h),
                "sequence".into(),
                a.iteration,
                b.iteration,
            ));
        }

        // Algorithm-1 decision sequence.
        if a.decisions.len() != b.decisions.len() {
            return Err(c.diverge(
                "decisions",
                Some(h),
                "count".into(),
                a.decisions.len(),
                b.decisions.len(),
            ));
        }
        for (i, (da, db)) in a.decisions.iter().zip(&b.decisions).enumerate() {
            let loc = |field: &str| format!("decision {i} node {} field {field}", da.node);
            if da.node != db.node {
                return Err(c.diverge("decisions", Some(h), loc("node"), da.node, db.node));
            }
            if da.threads_before != db.threads_before {
                return Err(c.diverge(
                    "decisions",
                    Some(h),
                    loc("threads_before"),
                    &da.threads_before,
                    &db.threads_before,
                ));
            }
            if da.threads_after != db.threads_after {
                return Err(c.diverge(
                    "decisions",
                    Some(h),
                    loc("threads_after"),
                    &da.threads_after,
                    &db.threads_after,
                ));
            }
            if da.evals != db.evals || da.converged != db.converged {
                return Err(c.diverge(
                    "decisions",
                    Some(h),
                    loc("evals/converged"),
                    (da.evals, da.converged),
                    (db.evals, db.converged),
                ));
            }
            if !floats_close(da.gap_s, db.gap_s, DECISION_TOL) {
                return Err(c.diverge("decisions", Some(h), loc("gap_s"), da.gap_s, db.gap_s));
            }
            let float_vecs = [
                ("queue_loads", &da.queue_loads, &db.queue_loads),
                ("predicted_cost", &da.predicted_cost, &db.predicted_cost),
            ];
            for (field, va, vb) in float_vecs {
                if va.len() != vb.len()
                    || va
                        .iter()
                        .zip(vb.iter())
                        .any(|(x, y)| !floats_close(*x, *y, DECISION_TOL))
                {
                    return Err(c.diverge("decisions", Some(h), loc(field), va, vb));
                }
            }
        }

        // Elastic role-flip decision sequence: pure integer/exact-f64
        // outputs of the deterministic controller, compared exactly.
        if a.role_flips.len() != b.role_flips.len() {
            return Err(c.diverge(
                "role_flips",
                Some(h),
                "count".into(),
                a.role_flips.len(),
                b.role_flips.len(),
            ));
        }
        for (i, (ra, rb)) in a.role_flips.iter().zip(&b.role_flips).enumerate() {
            if ra != rb {
                return Err(c.diverge("role_flips", Some(h), format!("tick {i}"), ra, rb));
            }
        }

        // Cluster-membership transitions: pure outputs of the compiled
        // crash plan, compared exactly (DESIGN.md §13).
        if a.membership.len() != b.membership.len() {
            return Err(c.diverge(
                "membership",
                Some(h),
                "count".into(),
                a.membership.len(),
                b.membership.len(),
            ));
        }
        for (i, (ma, mb)) in a.membership.iter().zip(&b.membership).enumerate() {
            if ma != mb {
                return Err(c.diverge("membership", Some(h), format!("event {i}"), ma, mb));
            }
        }

        // Per-GPU tier splits (local/remote/pfs fetch counts).
        if a.tier_counts.len() != b.tier_counts.len() {
            return Err(c.diverge(
                "tier_counts",
                Some(h),
                "gpu count".into(),
                a.tier_counts.len(),
                b.tier_counts.len(),
            ));
        }
        for (g, (ta, tb)) in a.tier_counts.iter().zip(&b.tier_counts).enumerate() {
            if ta != tb {
                return Err(c.diverge(
                    "tier_counts",
                    Some(h),
                    format!("gpu {g} [local, remote, pfs]"),
                    ta,
                    tb,
                ));
            }
        }

        // Eviction-victim order (capacity + reuse-count + reuse-distance).
        for (i, (ea, eb)) in a.evictions.iter().zip(&b.evictions).enumerate() {
            if ea != eb {
                return Err(c.diverge("evictions", Some(h), format!("event {i}"), ea, eb));
            }
        }
        if a.evictions.len() != b.evictions.len() {
            let i = a.evictions.len().min(b.evictions.len());
            return Err(c.diverge(
                "evictions",
                Some(h),
                format!("event {i} (extra)"),
                a.evictions.get(i),
                b.evictions.get(i),
            ));
        }

        // Prefetch counts per node.
        if a.prefetched != b.prefetched {
            return Err(c.diverge(
                "prefetched",
                Some(h),
                "per node".into(),
                &a.prefetched,
                &b.prefetched,
            ));
        }

        // Timing: pipeline durations, training starts, barrier release.
        for (field, va, vb) in [
            ("pipe_s", &a.pipe_s, &b.pipe_s),
            ("starts_s", &a.starts_s, &b.starts_s),
        ] {
            if va.len() != vb.len() {
                return Err(c.diverge(field, Some(h), "gpu count".into(), va.len(), vb.len()));
            }
            for (g, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
                if !c.times_close(*x, *y) {
                    return Err(c.diverge(field, Some(h), format!("gpu {g}"), x, y));
                }
            }
        }
        if !c.times_close(a.barrier_s, b.barrier_s) {
            return Err(c.diverge(
                "barrier_s",
                Some(h),
                "cluster".into(),
                a.barrier_s,
                b.barrier_s,
            ));
        }
    }

    // Delivered-sample multiset per epoch.
    if lhs.delivered.len() != rhs.delivered.len() {
        return Err(c.diverge(
            "delivered",
            None,
            "epoch count".into(),
            lhs.delivered.len(),
            rhs.delivered.len(),
        ));
    }
    for (e, (da, db)) in lhs.delivered.iter().zip(&rhs.delivered).enumerate() {
        if da != db {
            let i = da
                .iter()
                .zip(db.iter())
                .position(|(x, y)| x != y)
                .unwrap_or(da.len().min(db.len()));
            return Err(c.diverge(
                "delivered",
                None,
                format!("epoch {e}, first differing rank {i}"),
                (da.len(), da.get(i)),
                (db.len(), db.get(i)),
            ));
        }
    }

    // Run totals: hit/miss accounting and prefetch volume.
    for (field, x, y) in [
        ("local_hits", lhs.local_hits, rhs.local_hits),
        ("remote_hits", lhs.remote_hits, rhs.remote_hits),
        ("misses", lhs.misses, rhs.misses),
        ("prefetched_total", lhs.prefetched, rhs.prefetched),
    ] {
        if x != y {
            return Err(c.diverge(field, None, "run total".into(), x, y));
        }
    }

    // Telemetry anomaly sequence: the detector bank runs integer arithmetic
    // over µs-quantized frames, so — like membership — executors must agree
    // byte-for-byte on every firing (kind, tick, onset, value, baseline,
    // severity).
    for (i, (aa, ab)) in lhs.anomalies.iter().zip(&rhs.anomalies).enumerate() {
        if aa != ab {
            return Err(c.diverge("anomalies", Some(aa.tick), format!("firing {i}"), aa, ab));
        }
    }
    if lhs.anomalies.len() != rhs.anomalies.len() {
        let i = lhs.anomalies.len().min(rhs.anomalies.len());
        return Err(c.diverge(
            "anomalies",
            None,
            format!("firing {i} (extra)"),
            lhs.anomalies.get(i),
            rhs.anomalies.get(i),
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_pipeline::observe::{EvictReason, EvictionEvent, IterationObservables};

    fn base() -> RunObservables {
        RunObservables {
            iterations: vec![IterationObservables {
                iteration: 0,
                tier_counts: vec![[1, 2, 3]],
                evictions: vec![EvictionEvent {
                    node: 0,
                    sample: 7,
                    reason: EvictReason::Capacity,
                }],
                decisions: Vec::new(),
                prefetched: vec![4],
                role_flips: Vec::new(),
                membership: Vec::new(),
                pipe_s: vec![0.5],
                starts_s: vec![0.0],
                barrier_s: 1.0,
            }],
            delivered: vec![vec![1, 2, 3]],
            local_hits: 1,
            remote_hits: 2,
            misses: 3,
            prefetched: 4,
            anomalies: Vec::new(),
        }
    }

    #[test]
    fn identical_records_agree() {
        let a = base();
        let b = base();
        assert!(compare_runs("a", &a, "b", &b, 1e-6).is_ok());
    }

    #[test]
    fn tier_count_mismatch_is_first_divergence() {
        let a = base();
        let mut b = base();
        b.iterations[0].tier_counts[0] = [0, 3, 3];
        b.iterations[0].barrier_s = 9.0; // later divergence must not win
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "tier_counts");
        assert_eq!(d.iteration, Some(0));
        assert!(d.location.contains("gpu 0"), "{}", d.location);
    }

    #[test]
    fn timing_within_tolerance_passes() {
        let a = base();
        let mut b = base();
        b.iterations[0].barrier_s += 5e-7;
        assert!(compare_runs("a", &a, "b", &b, 1e-6).is_ok());
        assert!(compare_runs("a", &a, "b", &b, 1e-8).is_err());
    }

    #[test]
    fn eviction_order_mismatch_reports_event_index() {
        let a = base();
        let mut b = base();
        b.iterations[0].evictions[0].sample = 8;
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "evictions");
        assert_eq!(d.location, "event 0");
    }

    #[test]
    fn role_flip_mismatch_is_exact_and_reports_tick() {
        use lobster_pipeline::observe::RoleFlipObservable;
        let flip = RoleFlipObservable {
            tick: 0,
            preproc_before: 1,
            preproc_after: 2,
            loader_queues: vec![1, 1],
            flipped: vec![3],
        };
        let mut a = base();
        a.iterations[0].role_flips.push(flip.clone());
        let mut b = base();
        let mut frozen = flip;
        frozen.preproc_after = 1;
        frozen.flipped.clear();
        b.iterations[0].role_flips.push(frozen);
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "role_flips");
        assert_eq!(d.iteration, Some(0));
        assert_eq!(d.location, "tick 0");
    }

    #[test]
    fn membership_mismatch_is_exact_and_reports_event() {
        use lobster_pipeline::observe::MembershipObservable;
        let crash = MembershipObservable {
            tick: 0,
            node: 1,
            crashed: true,
        };
        let mut a = base();
        a.iterations[0].membership.push(crash);
        let b = base(); // drop-crash mutant: no membership events at all
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "membership");
        assert_eq!(d.iteration, Some(0));
        assert_eq!(d.location, "count");
    }

    #[test]
    fn anomaly_sequence_mismatch_is_exact_and_reports_firing() {
        use lobster_metrics::{Anomaly, DetectorKind};
        let firing = Anomaly {
            kind: DetectorKind::GapSpike,
            tick: 3,
            onset_tick: 3,
            value: 900,
            baseline: 100,
            severity: 8,
        };
        let mut a = base();
        a.anomalies.push(firing);
        let mut b = base();
        let mut shifted = firing;
        shifted.tick = 4; // detector-threshold mutant fires a tick late
        shifted.onset_tick = 4;
        b.anomalies.push(shifted);
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "anomalies");
        assert_eq!(d.iteration, Some(3));
        assert_eq!(d.location, "firing 0");

        // A missing trailing firing is also a divergence.
        let c = base();
        let d = compare_runs("a", &a, "c", &c, 1e-6).unwrap_err();
        assert_eq!(d.observable, "anomalies");
        assert!(d.location.contains("extra"), "{}", d.location);
    }

    #[test]
    fn delivered_multiset_mismatch_names_epoch() {
        let a = base();
        let mut b = base();
        b.delivered[0][2] = 9;
        let d = compare_runs("a", &a, "b", &b, 1e-6).unwrap_err();
        assert_eq!(d.observable, "delivered");
        assert!(d.location.contains("epoch 0"));
        assert!(format!("{d}").contains("conformance divergence"));
    }
}
