//! An event-driven re-execution of the cluster pipeline semantics.
//!
//! [`DesCluster`] runs the same seeded [`ExperimentConfig`] as
//! `lobster_pipeline::ClusterSim`, but on a different substrate: instead of
//! the closed-form barrier recurrence, every stage boundary is a scheduled
//! event on the `lobster-sim` discrete-event kernel (training starts,
//! training completions, barrier releases), and the §4.4 cache rules —
//! insert priorities, the reuse-count/reuse-distance sweeps, the
//! prefetch-displacement guard — are re-implemented here from the paper's
//! description rather than called from `lobster-core`. The two executors
//! share only the stage-duration *models* (Eq. 1's `load_time_parts`, the
//! preprocessing governor) and the policy planners, which are the model
//! under test in both.
//!
//! A correct pair of implementations therefore produces identical
//! [`RunObservables`]; any disagreement in the discrete observables is a
//! bug in one of them, and the timing observables must agree to float
//! round-off. The deliberate [`Mutation`] hooks flip exactly one rule here
//! so the harness can prove it notices.

use crate::mutation::Mutation;
use lobster_cache::{Directory, EvictOrder, NodeCache};
use lobster_core::elastic::{ElasticController, ElasticObservation, ElasticParams};
use lobster_core::model::load_time_parts;
use lobster_core::{
    CachingStrategy, LoaderPolicy, NodePlan, PlanContext, ThreadAlloc, TierBreakdown,
};
use lobster_data::{EpochSchedule, NodeOracle, SampleId};
use lobster_pipeline::observe::{
    DecisionObservable, EvictReason, EvictionEvent, IterationObservables, MembershipObservable,
    RoleFlipObservable, RunObservables,
};
use lobster_pipeline::ExperimentConfig;
use lobster_sim::{derive_seed, SimDuration, SimTime, SimWorld};
use lobster_storage::{FaultPlan, MembershipTransition, Tier};

/// Result of a DES conformance run.
#[derive(Debug)]
pub struct DesRun {
    pub observables: RunObservables,
    /// Simulated wall time of the whole run, seconds.
    pub total_wall_s: f64,
    /// DES events processed.
    pub events: u64,
}

/// DES event alphabet (public only because `SimWorld::Event` leaks it).
#[derive(Debug)]
pub enum Ev {
    /// The previous barrier released; run iteration `h`'s semantics and
    /// schedule its training stages.
    StartIteration(u64),
    /// One GPU finished training for iteration `h`.
    TrainDone { iter: u64 },
    /// Allreduce after iteration `h` completed.
    BarrierDone(u64),
}

/// The event-driven cluster executor.
pub struct DesCluster {
    cfg: ExperimentConfig,
    policy: Box<dyn LoaderPolicy>,
    governor: lobster_core::PreprocGovernor,
    caches: Vec<NodeCache>,
    directory: Directory,
    oracles: Vec<Option<NodeOracle>>,
    clocks: Vec<u64>,
    distributed: bool,
    mutation: Mutation,
    /// Elastic worker-pool controller (Some iff `cfg.elastic` is set) —
    /// the same deterministic controller `ClusterSim` and the live engine
    /// run, ticked once per iteration. [`Mutation::NeverSteal`] swaps it
    /// for a frozen one that refuses to flip roles.
    elastic_ctl: Option<ElasticController>,
    /// Compiled crash/rejoin schedule (Some iff `cfg.crashes` is set).
    /// [`Mutation::DropCrash`] clears it so the DES keeps everyone alive.
    crash_plan: Option<FaultPlan>,

    // Event-driven runtime state.
    start_prev: Vec<SimTime>,
    arrivals: usize,
    sched_cur: Option<EpochSchedule>,
    sched_next: Option<EpochSchedule>,

    // Accounting.
    obs: RunObservables,
    epoch_hits: (u64, u64, u64),
    epoch_prefetched: u64,
    events_scratch: Vec<EvictionEvent>,

    // Telemetry: per-tick frames mirroring ClusterSim's, started in
    // `semantic_step` and completed (timing fields) at barrier time, then
    // fed through the detector bank. [`Mutation::DetectorThreshold`] swaps
    // the bank's thresholds for the mutated set.
    tele_bank: lobster_metrics::DetectorBank,
    tele_pending: Option<lobster_metrics::TickScalars>,
    tele_last_barrier_s: f64,
}

impl DesCluster {
    pub fn new(cfg: ExperimentConfig, policy: Box<dyn LoaderPolicy>) -> DesCluster {
        let n = cfg.cluster.nodes;
        let order = if policy.caching().evicts() {
            EvictOrder::SmallestKeyFirst
        } else {
            EvictOrder::NeverEvict
        };
        let caches = (0..n)
            .map(|_| NodeCache::new(cfg.cluster.cache_bytes, order))
            .collect();
        let governor = cfg.calibrated_governor();
        let world = cfg.cluster.world_size();
        let distributed = policy.distributed_cache();
        let elastic_ctl = cfg.elastic.as_ref().map(|e| {
            let mut p = ElasticParams::for_pool(e.workers, cfg.cluster.gpus_per_node as u32);
            p.force_churn = e.churn;
            p.frozen = e.frozen;
            ElasticController::new(p, e.initial_preproc)
        });
        DesCluster {
            governor,
            caches,
            directory: Directory::new(n),
            oracles: (0..n).map(|_| None).collect(),
            clocks: vec![0; n],
            distributed,
            mutation: Mutation::None,
            elastic_ctl,
            crash_plan: (!cfg.crashes.is_empty()).then(|| cfg.crash_plan()),
            start_prev: vec![SimTime::ZERO; world],
            arrivals: 0,
            sched_cur: None,
            sched_next: None,
            obs: RunObservables::default(),
            epoch_hits: (0, 0, 0),
            epoch_prefetched: 0,
            events_scratch: Vec::new(),
            tele_bank: lobster_metrics::DetectorBank::new(
                lobster_metrics::DetectorConfig::standard(),
            ),
            tele_pending: None,
            tele_last_barrier_s: 0.0,
            policy,
            cfg,
        }
    }

    /// Arm a deliberate single-rule flip (canary mode).
    pub fn with_mutation(mut self, mutation: Mutation) -> DesCluster {
        self.mutation = mutation;
        if mutation == Mutation::NeverSteal {
            // Replace the controller with one frozen at the initial split:
            // it still ticks (so the decision sequence has the right
            // length) but never flips a role.
            if let Some(e) = self.cfg.elastic.as_ref() {
                let mut p =
                    ElasticParams::for_pool(e.workers, self.cfg.cluster.gpus_per_node as u32);
                p.force_churn = e.churn;
                p.frozen = true;
                self.elastic_ctl = Some(ElasticController::new(p, e.initial_preproc));
            }
        }
        if mutation == Mutation::DropCrash {
            self.crash_plan = None;
        }
        if mutation == Mutation::DetectorThreshold {
            // Same detector pipeline, different thresholds: the anomaly
            // sequence diverges from ClusterSim's on any frame stream that
            // fires (or suppresses) a detector near a boundary.
            self.tele_bank =
                lobster_metrics::DetectorBank::new(lobster_metrics::DetectorConfig::mutated());
        }
        self
    }

    /// Drive the event loop to completion.
    pub fn run(mut self) -> DesRun {
        let iters = self.cfg.iterations_per_epoch() as u64;
        let total = iters * self.cfg.epochs;
        let mut sched = lobster_sim::Scheduler::new();
        if total > 0 {
            sched.at(SimTime::ZERO, Ev::StartIteration(0));
        }
        // Events per iteration: 1 start + world TrainDone + 1 barrier.
        let budget = total * (self.cfg.cluster.world_size() as u64 + 2) + 16;
        let stats = lobster_sim::run(&mut self, &mut sched, None, budget);
        assert!(!stats.truncated, "conformance DES exceeded event budget");
        DesRun {
            total_wall_s: stats.end_time.as_secs_f64(),
            events: stats.events,
            observables: self.obs,
        }
    }

    // ---- §4.4 rules, re-implemented (and mutation-hookable). ----

    /// Victim-order key encoding shared with `NodeCache`: smaller is evicted
    /// first. Never-reused samples take key 0; an earlier next use yields a
    /// larger key.
    fn reuse_key(next_use: Option<u64>) -> u64 {
        match next_use {
            None => 0,
            Some(it) => u64::MAX - it,
        }
    }

    fn bump_clock(&mut self, node: usize) -> u64 {
        self.clocks[node] += 1;
        self.clocks[node]
    }

    fn insert_key(&mut self, node: usize, s: SampleId, strategy: CachingStrategy) -> u64 {
        match strategy {
            CachingStrategy::Lru | CachingStrategy::PrefetchLru | CachingStrategy::InsertOnly => {
                self.bump_clock(node)
            }
            CachingStrategy::ReuseAware => {
                if self.mutation == Mutation::CapacityKeyLru {
                    return self.bump_clock(node);
                }
                let next = self.oracles[node]
                    .as_ref()
                    .and_then(|o| o.future_of(s))
                    .map(|f| f.next_iteration);
                Self::reuse_key(next)
            }
        }
    }

    fn classify(&self, node: usize, s: SampleId) -> Tier {
        if self.caches[node].contains(s) {
            Tier::LocalCache
        } else if self.distributed && self.directory.held_elsewhere(s, node) {
            Tier::RemoteCache
        } else {
            Tier::Pfs
        }
    }

    fn kv_owner(&self, s: SampleId) -> usize {
        (derive_seed(0x4B56, s.0 as u64) % self.cfg.cluster.nodes as u64) as usize
    }

    fn insert_sample(&mut self, node: usize, s: SampleId, strategy: CachingStrategy) {
        let home = if self.cfg.kv_partitioned && self.distributed {
            // A dead hash-owner falls back to the consuming node (same rule
            // as ClusterSim: ownership heals on rejoin, never re-hashed).
            let owner = self.kv_owner(s);
            if self.directory.is_live(owner) {
                owner
            } else {
                node
            }
        } else {
            node
        };
        let bytes = self.cfg.dataset.size_of(s);
        let key = self.insert_key(home, s, strategy);
        let outcome = self.caches[home].insert(s, bytes, key);
        if outcome.inserted {
            self.directory.add(s, home);
        }
        for victim in outcome.evicted {
            self.directory.remove(victim, home);
            self.events_scratch.push(EvictionEvent {
                node: home as u32,
                sample: victim.0 as u64,
                reason: EvictReason::Capacity,
            });
        }
    }

    fn demand_fetch(&mut self, node: usize, samples: &[SampleId], strategy: CachingStrategy) {
        for &s in samples {
            match self.classify(node, s) {
                Tier::LocalCache => {
                    self.epoch_hits.0 += 1;
                    let key = self.insert_key(node, s, strategy);
                    self.caches[node].set_key(s, key);
                }
                Tier::RemoteCache => {
                    self.epoch_hits.1 += 1;
                    self.insert_sample(node, s, strategy);
                }
                Tier::Pfs => {
                    self.epoch_hits.2 += 1;
                    self.insert_sample(node, s, strategy);
                }
            }
        }
    }

    /// The paper's two proactive policies, applied to the batch the node
    /// just consumed. Re-derived from §4.4: a sample with no remaining use
    /// on the node leaves immediately (unless it is the last copy anywhere);
    /// a sample whose next reuse lies beyond `2I − h` iterations "will not
    /// be accessed by any GPUs on the node during the next epoch" and leaves
    /// too; survivors get re-keyed by the nearness of their next use.
    fn sweep(&mut self, node: usize, batch: &[SampleId], h: usize, iters: usize, now_iter: u64) {
        let mut horizon = (2 * iters).saturating_sub(h) as u64;
        if self.mutation == Mutation::HorizonOffByOne {
            horizon = horizon.saturating_sub(1);
        }
        let oracle = self.oracles[node].take().expect("sweep requires an oracle");
        for &s in batch {
            if !self.caches[node].contains(s) {
                continue;
            }
            match oracle.future_of(s) {
                None => {
                    let replicated = self.directory.held_elsewhere(s, node)
                        || self.mutation == Mutation::SkipLastCopyGuard;
                    if replicated {
                        self.caches[node].evict(s);
                        self.directory.remove(s, node);
                        self.events_scratch.push(EvictionEvent {
                            node: node as u32,
                            sample: s.0 as u64,
                            reason: EvictReason::ReuseCount,
                        });
                    } else {
                        // Last copy anywhere: keep it as a cheap source, just
                        // above the never-reused key.
                        self.caches[node].set_key(s, Self::reuse_key(None) + 1);
                    }
                }
                Some(fut) => {
                    let distance = fut.next_iteration.saturating_sub(now_iter);
                    if distance > horizon {
                        self.caches[node].evict(s);
                        self.directory.remove(s, node);
                        self.events_scratch.push(EvictionEvent {
                            node: node as u32,
                            sample: s.0 as u64,
                            reason: EvictReason::ReuseDistance,
                        });
                    } else {
                        self.caches[node].set_key(s, Self::reuse_key(Some(fut.next_iteration)));
                    }
                }
            }
        }
        self.oracles[node] = Some(oracle);
    }

    /// Deterministic prefetch with the iteration's spare loader seconds,
    /// including Lobster's coordination guard: never displace a resident
    /// needed sooner than the sample being brought in.
    fn prefetch(
        &mut self,
        node: usize,
        plan: &NodePlan,
        spare_s: f64,
        strategy: CachingStrategy,
        reading_nodes: usize,
    ) -> u64 {
        let Some(oracle) = self.oracles[node].take() else {
            return 0;
        };
        let threads: u32 = plan.load_threads.iter().sum::<u32>().max(1);
        let mut budget = spare_s;
        let mut fetched = 0u64;
        let mut to_fetch: Vec<SampleId> = Vec::new();
        let lookahead = plan
            .prefetch_lookahead
            .min(self.cfg.prefetch_lookahead)
            .max(1);
        let batch = self.cfg.cluster.batch_size;
        let cap = 4 * batch * self.cfg.cluster.gpus_per_node;

        'outer: for la in 0..lookahead {
            let upcoming = oracle.upcoming_iteration(la);
            if upcoming.is_empty() {
                break;
            }
            // GPU-interleaved walk: fill every GPU's staging buffer in step.
            let gpus_here = upcoming.len() / batch.max(1);
            let interleaved = (0..batch)
                .flat_map(|k| (0..gpus_here).map(move |gpu| gpu * batch + k))
                .map(|idx| upcoming[idx]);
            for s in interleaved {
                if self.caches[node].contains(s) {
                    continue;
                }
                let bytes = self.cfg.dataset.size_of(s) as f64;
                let cost = if self.distributed && self.directory.held_elsewhere(s, node) {
                    self.cfg
                        .storage
                        .read_secs(Tier::RemoteCache, bytes, 1, threads, 1)
                } else {
                    self.cfg
                        .storage
                        .read_secs(Tier::Pfs, bytes, 1, threads, reading_nodes)
                };
                if cost > budget {
                    break 'outer;
                }
                if strategy == CachingStrategy::ReuseAware {
                    let new_key = Self::reuse_key(oracle.future_of(s).map(|f| f.next_iteration));
                    if self.caches[node].free_bytes() < bytes as u64 {
                        let victim_key = self.caches[node]
                            .peek_victim()
                            .and_then(|v| self.caches[node].key_of(v));
                        let stop = match (victim_key, self.mutation) {
                            (None, _) => true,
                            (Some(vk), Mutation::InvertPrefetchGuard) => vk < new_key,
                            (Some(vk), _) => vk >= new_key,
                        };
                        if stop {
                            break 'outer;
                        }
                    }
                }
                budget -= cost;
                to_fetch.push(s);
                fetched += 1;
                if to_fetch.len() >= cap {
                    break 'outer;
                }
            }
        }
        self.oracles[node] = Some(oracle);
        for s in to_fetch {
            self.insert_sample(node, s, strategy);
        }
        fetched
    }

    // ---- The per-iteration semantic step. ----

    fn begin_epoch(&mut self, epoch: u64) {
        let spec = self.cfg.schedule_spec();
        let iters = self.cfg.iterations_per_epoch() as u64;
        let sched = self.sched_next.take().unwrap_or_else(|| {
            lobster_data::generate_access(spec, epoch, self.cfg.partition, self.cfg.access)
        });
        let upcoming =
            lobster_data::generate_access(spec, epoch + 1, self.cfg.partition, self.cfg.access);
        if self.policy.caching().uses_oracle() {
            for node in 0..self.cfg.cluster.nodes {
                self.oracles[node] =
                    Some(NodeOracle::build(node, &[&sched, &upcoming], epoch * iters));
            }
        }
        self.sched_cur = Some(sched);
        self.sched_next = Some(upcoming);
        self.epoch_hits = (0, 0, 0);
        self.epoch_prefetched = 0;
    }

    fn end_epoch(&mut self) {
        let sched = self.sched_cur.as_ref().expect("epoch in progress");
        let mut d: Vec<u64> = sched.all_accesses().iter().map(|s| s.0 as u64).collect();
        d.sort_unstable();
        self.obs.delivered.push(d);
        self.obs.local_hits += self.epoch_hits.0;
        self.obs.remote_hits += self.epoch_hits.1;
        self.obs.misses += self.epoch_hits.2;
        self.obs.prefetched += self.epoch_prefetched;
    }

    /// Run iteration `h_global`'s data-path semantics at barrier time `now`
    /// and return the per-GPU pipeline durations (seconds).
    #[allow(clippy::needless_range_loop)]
    fn semantic_step(&mut self, h_global: u64, now: SimTime) -> Vec<f64> {
        let iters = self.cfg.iterations_per_epoch();
        let h = (h_global % iters as u64) as usize;
        if h == 0 {
            self.begin_epoch(h_global / iters as u64);
        }
        let sched = self.sched_cur.take().expect("epoch schedule present");
        let nodes = self.cfg.cluster.nodes;
        let gpus = self.cfg.cluster.gpus_per_node;
        let world = self.cfg.cluster.world_size();
        let strategy = self.policy.caching();
        let t_train = self.cfg.model.t_train_s;
        let efficiency = self.policy.loading_efficiency();
        let mean_bytes = self.cfg.dataset.mean_sample_bytes() as u64;
        let now_s = now.as_secs_f64();

        // Membership transitions at the tick boundary, before any
        // classification — the same rule ClusterSim applies: a crash wipes
        // the node's cache and purges its directory entries, a rejoin
        // re-admits it cold.
        let mut membership: Vec<MembershipObservable> = Vec::new();
        if let Some(plan) = self.crash_plan.as_ref() {
            for e in plan.membership_events_at(h_global) {
                let node = e.node as usize;
                match e.transition {
                    MembershipTransition::Crashed => {
                        self.caches[node].wipe();
                        self.directory.crash_node(node);
                    }
                    MembershipTransition::Rejoined => {
                        self.directory.rejoin_node(node);
                    }
                }
                membership.push(MembershipObservable::from_event(&e));
            }
        }
        let down = self
            .crash_plan
            .as_ref()
            .map_or(0u64, |p| p.down_mask_at(h_global));

        // Pass 1: classify every GPU's batch before any mutation. A dead
        // node's rows stay all-zero; its batches are fostered below.
        // `work_units` mirrors ClusterSim's per-node size × cost account.
        let mut work_units = vec![0u64; nodes];
        let mut splits: Vec<Vec<TierBreakdown>> = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let mut per_gpu = Vec::with_capacity(gpus);
            for gpu in 0..gpus {
                let mut split = TierBreakdown::default();
                if down & (1u64 << node) == 0 {
                    for &s in sched.batch(h, node, gpu) {
                        split.add(self.classify(node, s), self.cfg.dataset.size_of(s));
                        work_units[node] += self.cfg.dataset.work_bytes_of(s);
                    }
                }
                per_gpu.push(split);
            }
            splits.push(per_gpu);
        }

        // Re-shard a dead node's slice across survivors, exactly as
        // ClusterSim does: batch (d, g) rides survivor S = survivors[(d·G+g)
        // mod |survivors|] on its GPU-g queue; foster fetches are counted
        // as deliveries but never mutate S's cache.
        if down != 0 {
            let survivors: Vec<usize> = (0..nodes).filter(|n| down & (1u64 << n) == 0).collect();
            assert!(
                !survivors.is_empty(),
                "crash schedule downs every node at iteration {h_global}"
            );
            for d in 0..nodes {
                if down & (1u64 << d) == 0 {
                    continue;
                }
                for gpu in 0..gpus {
                    let host = survivors[(d * gpus + gpu) % survivors.len()];
                    let mut foster = TierBreakdown::default();
                    for &s in sched.batch(h, d, gpu) {
                        foster.add(self.classify(host, s), self.cfg.dataset.size_of(s));
                        work_units[host] += self.cfg.dataset.work_bytes_of(s);
                    }
                    self.epoch_hits.0 += foster.local_count;
                    self.epoch_hits.1 += foster.remote_count;
                    self.epoch_hits.2 += foster.pfs_count;
                    splits[host][gpu].merge(&foster);
                }
            }
        }
        let reading_nodes = splits
            .iter()
            .filter(|per| per.iter().any(|s| s.pfs_count > 0))
            .count()
            .max(1);
        let tier_counts: Vec<[u64; 3]> = splits
            .iter()
            .flat_map(|per| {
                per.iter()
                    .map(|s| [s.local_count, s.remote_count, s.pfs_count])
            })
            .collect();

        // Elastic worker-pool tick (mirrors ClusterSim exactly): one
        // cluster-wide controller decision per iteration from purely
        // deterministic inputs, applied identically on every node.
        let mean_sample_f = self
            .cfg
            .elastic
            .as_ref()
            .map_or(lobster_core::WorkEstimate::Mean, |e| e.estimate)
            .per_sample_bytes(&self.cfg.dataset);
        let elastic_batch_samples = (gpus * self.cfg.cluster.batch_size) as u64;
        let elastic_step = self.cfg.elastic.and_then(|e| {
            let ctl = self.elastic_ctl.as_mut()?;
            let wf = e.work_factor_at(h_global);
            let eobs = ElasticObservation::for_iteration(
                h_global,
                mean_sample_f,
                wf,
                elastic_batch_samples,
                t_train,
            );
            Some((ctl.tick(&eobs).clone(), wf))
        });
        let mut role_flips: Vec<RoleFlipObservable> = Vec::new();
        if let Some((d, _)) = &elastic_step {
            role_flips.push(RoleFlipObservable::from_decision(d));
        }

        // Pass 2: plan, fetch, sweep, prefetch — node by node.
        let mut decisions: Vec<DecisionObservable> = Vec::new();
        let mut prefetched = vec![0u64; nodes];
        let mut pipe_s = vec![0.0f64; world];
        for node in 0..nodes {
            if down & (1u64 << node) != 0 {
                // Dead node: no plan, no fetches, no sweep, no prefetch —
                // but its oracle still advances so the reuse window stays
                // aligned for rejoin. Its GPUs keep pipe_s = 0.
                if let Some(oracle) = self.oracles[node].as_mut() {
                    oracle.advance();
                }
                continue;
            }
            let ctx = PlanContext {
                node,
                iter_in_epoch: h,
                iters_per_epoch: iters,
                t_train_s: t_train,
                storage: &self.cfg.storage,
                splits: &splits[node],
                total_threads: self.cfg.cluster.pipeline_threads,
                reading_nodes,
                batch_samples: self.cfg.cluster.batch_size,
                mean_sample_bytes: mean_bytes,
                governor: &self.governor,
            };
            let mut plan = self.policy.plan(&ctx);
            if let Some((d, _)) = &elastic_step {
                // The controller owns the split in elastic mode.
                plan.preproc_threads = d.preproc_after;
                plan.load_threads = d.loader_queues.clone();
            }
            for d in self.policy.drain_decisions() {
                decisions.push(DecisionObservable::from_plan(node, &d));
            }

            let node_work = if self.mutation == Mutation::UniformCost {
                // Mutant: collapse per-sample preprocessing cost to the
                // dataset-wide mean. The ratio is exactly 1.0 on unit-cost
                // datasets (equivalent), and diverges on any mixed-cost
                // workload — the quantity conformance must notice.
                let plain: f64 = splits[node].iter().map(TierBreakdown::total_bytes).sum();
                plain
                    * (self.cfg.dataset.total_work_bytes() as f64
                        / self.cfg.dataset.total_bytes() as f64)
            } else {
                work_units[node] as f64
            };
            // Work factor scales the preprocessing bytes (wf = 1 is exact
            // identity, so non-elastic runs are untouched).
            let elastic_wf = elastic_step.as_ref().map_or(1, |(_, wf)| *wf);
            let t_prep = self
                .cfg
                .preproc
                .batch_secs(node_work * elastic_wf as f64, plan.preproc_threads);

            // Intra-node overcommit at the tier-curve knees.
            let knee_r = self.cfg.storage.curve(Tier::RemoteCache).peak().0;
            let knee_p = self.cfg.storage.curve(Tier::Pfs).peak().0;
            let mut total_r = 0u32;
            let mut total_p = 0u32;
            for gpu in 0..gpus {
                let threads = plan.load_threads[gpu].max(1);
                if splits[node][gpu].remote_count > 0 {
                    total_r += threads;
                }
                if splits[node][gpu].pfs_count > 0 {
                    total_p += threads;
                }
            }
            let oc_r = (total_r as f64 / knee_r as f64).max(1.0);
            let oc_p = (total_p as f64 / knee_p as f64).max(1.0);

            let mut load_s = vec![0.0f64; gpus];
            let mut node_pipe_max = 0.0f64;
            for gpu in 0..gpus {
                let g = node * gpus + gpu;
                let threads = plan.load_threads[gpu].max(1);
                let parts = load_time_parts(
                    &self.cfg.storage,
                    &splits[node][gpu],
                    ThreadAlloc::uniform(threads),
                    reading_nodes,
                );
                let slowdown = self.cfg.slowdown_at(node, now_s);
                let t_load = parts.total_with_overcommit(oc_r, oc_p) / efficiency * slowdown;
                load_s[gpu] = t_load;
                pipe_s[g] = t_load + t_prep;
                node_pipe_max = node_pipe_max.max(pipe_s[g]);
            }

            let node_samples: Vec<SampleId> = sched.node_iteration(h, node).to_vec();
            self.demand_fetch(node, &node_samples, strategy);

            if let Some(oracle) = self.oracles[node].as_mut() {
                oracle.advance();
            }
            if strategy == CachingStrategy::ReuseAware {
                self.sweep(node, &node_samples, h, iters, h_global);
            }

            if plan.prefetch {
                // Spare loader time: the iteration window minus each GPU's
                // own demand load, weighted by its share of the thread pool.
                let window = t_train.max(node_pipe_max);
                let total_threads: u32 = plan.load_threads.iter().map(|&t| t.max(1)).sum();
                let mut spare = 0.0;
                for gpu in 0..gpus {
                    let share = plan.load_threads[gpu].max(1) as f64 / total_threads as f64;
                    spare += (window - load_s[gpu]).max(0.0) * share;
                }
                let got = self.prefetch(node, &plan, spare, strategy, reading_nodes);
                prefetched[node] = got;
                self.epoch_prefetched += got;
            }
        }
        self.sched_cur = Some(sched);

        // Telemetry frame: everything but the timing fields, which only
        // exist once the barrier event fires. Tier counts, eviction events,
        // worker split, and the down mask are the exact quantities
        // ClusterSim folds into its frame at the same tick.
        let mut tiers = [0u64; 3];
        for per in &splits {
            for s in per {
                tiers[0] += s.local_count;
                tiers[1] += s.remote_count;
                tiers[2] += s.pfs_count;
            }
        }
        let (pw, lw) = match (&elastic_step, self.cfg.elastic.as_ref()) {
            (Some((d, _)), Some(e)) => (d.preproc_after, e.workers - d.preproc_after),
            _ => (0u32, self.cfg.cluster.pipeline_threads),
        };
        self.tele_pending = Some(lobster_metrics::TickScalars {
            tick: h_global,
            gap_us: 0,
            iter_us: 0,
            local_hits: tiers[0],
            remote_hits: tiers[1],
            misses: tiers[2],
            prefetched: prefetched.iter().sum(),
            evictions: self.events_scratch.len() as u64,
            retries: 0,
            delivered: tiers[0] + tiers[1] + tiers[2],
            preproc_workers: pw,
            loader_workers: lw,
            down_mask: down,
        });

        self.obs.iterations.push(IterationObservables {
            iteration: h_global,
            tier_counts,
            evictions: std::mem::take(&mut self.events_scratch),
            decisions,
            prefetched,
            role_flips,
            membership,
            pipe_s: pipe_s.clone(),
            // Start times are filled as training stages get scheduled.
            starts_s: Vec::with_capacity(world),
            barrier_s: f64::NAN,
        });
        pipe_s
    }
}

impl SimWorld for DesCluster {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut lobster_sim::Scheduler<Ev>) {
        let iters = self.cfg.iterations_per_epoch() as u64;
        let total = iters * self.cfg.epochs;
        let t_train = SimDuration::from_secs_f64(self.cfg.model.t_train_s);
        match event {
            Ev::StartIteration(h) => {
                let now = sched.now();
                let pipe_s = self.semantic_step(h, now);
                for (g, &p) in pipe_s.iter().enumerate() {
                    // ready = start of previous training + pipeline time;
                    // the stage overlaps the previous training stage.
                    let ready = self.start_prev[g] + SimDuration::from_secs_f64(p);
                    let start = now.max(ready);
                    self.start_prev[g] = start;
                    let rec = self.obs.iterations.last_mut().expect("step recorded");
                    rec.starts_s.push(start.as_secs_f64());
                    sched.at(start + t_train, Ev::TrainDone { iter: h });
                }
                self.arrivals = 0;
            }
            Ev::TrainDone { iter } => {
                self.arrivals += 1;
                if self.arrivals == self.cfg.cluster.world_size() {
                    sched.after(
                        SimDuration::from_secs_f64(self.cfg.allreduce_s),
                        Ev::BarrierDone(iter),
                    );
                }
            }
            Ev::BarrierDone(h) => {
                let now = sched.now();
                let barrier_s = now.as_secs_f64();
                let pipe_s = {
                    let rec = self.obs.iterations.last_mut().expect("iteration open");
                    rec.barrier_s = barrier_s;
                    rec.pipe_s.clone()
                };
                if let Some(mut scalars) = self.tele_pending.take() {
                    // Same Eq.-3 quantities ClusterSim derives: pipeline
                    // spread with the t_train floor, and barrier-to-barrier
                    // wall time, both quantized to µs.
                    let tt = self.cfg.model.t_train_s;
                    let eff: Vec<f64> = pipe_s.iter().map(|&p| p.max(tt)).collect();
                    let spread = lobster_core::imbalance_gap_secs(&eff);
                    scalars.gap_us = (spread * 1e6).round() as u64;
                    scalars.iter_us = ((barrier_s - self.tele_last_barrier_s) * 1e6).round() as u64;
                    self.tele_last_barrier_s = barrier_s;
                    let (bank, anoms) = (&mut self.tele_bank, &mut self.obs.anomalies);
                    bank.observe(&scalars, |a| anoms.push(a));
                }
                if (h + 1) % iters == 0 {
                    self.end_epoch();
                }
                if h + 1 < total {
                    sched.at(now, Ev::StartIteration(h + 1));
                }
            }
        }
    }
}
