//! Model-based checking of the cache layer and the §4.4 eviction rules.
//!
//! Two reference models live here, both deliberately naive — O(n) scans
//! over plain `Vec`s, written straight from the documented semantics with
//! no shared code with the production implementations:
//!
//! * [`RefCache`] mirrors `lobster_cache::NodeCache` (priority-indexed
//!   capacity eviction, pinning, stats). [`check_trace`] replays an
//!   arbitrary [`Op`] trace through both and compares every externally
//!   visible behaviour after every operation.
//! * [`naive_sweep_expectation`] recomputes the paper's §4.4 proactive
//!   eviction decisions (reuse count unless sole copy; reuse distance
//!   beyond `2I − h`; nearest-reuse priority keys) by direct forward scans
//!   of the epoch schedules, with no oracle. [`check_sweep`] runs
//!   `ReuseAwareEvictor` against it.
//!
//! The vendored proptest shim does not shrink, so [`shrink_trace`] provides
//! greedy delta-debugging: callers hand it a failing trace and a predicate
//! and get back a locally minimal counterexample.

use lobster_cache::{CacheStats, Directory, EvictOrder, NodeCache};
use lobster_core::{EvictCause, ReuseAwareEvictor};
use lobster_data::{EpochSchedule, NodeOracle, SampleId, ScheduleSpec};
use serde::{Deserialize, Serialize};

/// One operation of a cache access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    Insert { id: u32, bytes: u64, key: u64 },
    SetKey { id: u32, key: u64 },
    Evict { id: u32 },
    Pin { id: u32 },
    Unpin { id: u32 },
}

impl Op {
    fn id(&self) -> u32 {
        match *self {
            Op::Insert { id, .. }
            | Op::SetKey { id, .. }
            | Op::Evict { id }
            | Op::Pin { id }
            | Op::Unpin { id } => id,
        }
    }
}

#[derive(Debug, Clone)]
struct RefEntry {
    id: u32,
    bytes: u64,
    key: u64,
    pinned: bool,
}

/// Naive reference model of `NodeCache`: an unordered `Vec` of entries,
/// every query a linear scan.
#[derive(Debug, Clone)]
pub struct RefCache {
    capacity: u64,
    order: EvictOrder,
    entries: Vec<RefEntry>,
    stats: CacheStats,
}

impl RefCache {
    pub fn new(capacity: u64, order: EvictOrder) -> RefCache {
        RefCache {
            capacity,
            order,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, id: u32) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn find(&self, id: u32) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// Victim = smallest `(key, id)` among non-pinned entries.
    pub fn peek_victim(&self) -> Option<u32> {
        if self.order == EvictOrder::NeverEvict {
            return None;
        }
        self.entries
            .iter()
            .filter(|e| !e.pinned)
            .min_by_key(|e| (e.key, e.id))
            .map(|e| e.id)
    }

    /// Every resident entry in victim order (pinned ones included).
    pub fn victim_order(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u64, u32)> = self.entries.iter().map(|e| (e.key, e.id)).collect();
        v.sort_unstable();
        v.into_iter().map(|(k, id)| (id, k)).collect()
    }

    /// Returns `(now_resident, evicted_ids_in_order)`.
    pub fn insert(&mut self, id: u32, bytes: u64, key: u64) -> (bool, Vec<u32>) {
        if let Some(i) = self.find(id) {
            self.entries[i].key = key;
            return (true, Vec::new());
        }
        if bytes > self.capacity {
            self.stats.rejected += 1;
            return (false, Vec::new());
        }
        let mut evicted = Vec::new();
        while self.used_bytes() + bytes > self.capacity {
            if self.order == EvictOrder::NeverEvict {
                self.stats.rejected += 1;
                return (false, evicted);
            }
            match self.peek_victim() {
                Some(victim) => {
                    let i = self.find(victim).expect("victim is resident");
                    self.entries.remove(i);
                    self.stats.evictions += 1;
                    evicted.push(victim);
                }
                None => {
                    self.stats.rejected += 1;
                    return (false, evicted);
                }
            }
        }
        self.entries.push(RefEntry {
            id,
            bytes,
            key,
            pinned: false,
        });
        self.stats.inserts += 1;
        (true, evicted)
    }

    pub fn set_key(&mut self, id: u32, key: u64) {
        if let Some(i) = self.find(id) {
            self.entries[i].key = key;
        }
    }

    pub fn evict(&mut self, id: u32) -> bool {
        match self.find(id) {
            Some(i) => {
                self.entries.remove(i);
                self.stats.proactive_evictions += 1;
                true
            }
            None => false,
        }
    }

    pub fn pin(&mut self, id: u32) {
        if let Some(i) = self.find(id) {
            self.entries[i].pinned = true;
        }
    }

    pub fn unpin(&mut self, id: u32) {
        if let Some(i) = self.find(id) {
            self.entries[i].pinned = false;
        }
    }
}

/// Replay `ops` through `NodeCache` and [`RefCache`] in lockstep, comparing
/// every externally visible behaviour after each operation. `Err` carries a
/// human-readable description of the first disagreement.
pub fn check_trace(capacity: u64, order: EvictOrder, ops: &[Op]) -> Result<(), String> {
    let mut real = NodeCache::new(capacity, order);
    let mut model = RefCache::new(capacity, order);
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Insert { id, bytes, key } => {
                let out = real.insert(SampleId(id), bytes, key);
                let (m_in, m_ev) = model.insert(id, bytes, key);
                if out.inserted != m_in {
                    return Err(format!(
                        "op {i} {op:?}: inserted mismatch (real {}, model {m_in})",
                        out.inserted
                    ));
                }
                let r_ev: Vec<u32> = out.evicted.iter().map(|s| s.0).collect();
                if r_ev != m_ev {
                    return Err(format!(
                        "op {i} {op:?}: evicted mismatch (real {r_ev:?}, model {m_ev:?})"
                    ));
                }
            }
            Op::SetKey { id, key } => {
                real.set_key(SampleId(id), key);
                model.set_key(id, key);
            }
            Op::Evict { id } => {
                let r = real.evict(SampleId(id));
                let m = model.evict(id);
                if r != m {
                    return Err(format!(
                        "op {i} {op:?}: evict result mismatch (real {r}, model {m})"
                    ));
                }
            }
            Op::Pin { id } => {
                real.pin(SampleId(id));
                model.pin(id);
            }
            Op::Unpin { id } => {
                real.unpin(SampleId(id));
                model.unpin(id);
            }
        }

        // Full-state comparison after every op.
        if real.used_bytes() != model.used_bytes() || real.len() != model.len() {
            return Err(format!(
                "op {i} {op:?}: occupancy mismatch (real {}B/{} entries, model {}B/{} entries)",
                real.used_bytes(),
                real.len(),
                model.used_bytes(),
                model.len()
            ));
        }
        let touched = op.id();
        if real.contains(SampleId(touched)) != model.contains(touched) {
            return Err(format!(
                "op {i} {op:?}: residency of {touched} mismatch (real {}, model {})",
                real.contains(SampleId(touched)),
                model.contains(touched)
            ));
        }
        if real.peek_victim().map(|s| s.0) != model.peek_victim() {
            return Err(format!(
                "op {i} {op:?}: peek_victim mismatch (real {:?}, model {:?})",
                real.peek_victim(),
                model.peek_victim()
            ));
        }
        let r_order: Vec<(u32, u64)> = real.iter_victim_order().map(|(s, k)| (s.0, k)).collect();
        if r_order != model.victim_order() {
            return Err(format!(
                "op {i} {op:?}: victim order mismatch (real {r_order:?}, model {:?})",
                model.victim_order()
            ));
        }
        if real.stats() != model.stats() {
            return Err(format!(
                "op {i} {op:?}: stats mismatch (real {:?}, model {:?})",
                real.stats(),
                model.stats()
            ));
        }
    }
    Ok(())
}

/// Greedy delta-debugging: drop ever-smaller chunks of `ops` while the
/// failure (as judged by `fails`) persists. Returns a locally minimal
/// failing trace. The vendored proptest shim does not shrink, so this is
/// the shrinker for trace counterexamples.
pub fn shrink_trace<F>(ops: &[Op], fails: F) -> Vec<Op>
where
    F: Fn(&[Op]) -> bool,
{
    debug_assert!(fails(ops), "shrink_trace needs a failing trace");
    let mut cur: Vec<Op> = ops.to_vec();
    let mut chunk = cur.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut shrunk = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                cur = candidate;
                shrunk = true;
                // Retry the same window; indices shifted left.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk /= 2;
        }
    }
    cur
}

/// What the §4.4 sweep should do, per the naive reference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepExpectation {
    /// Evictions in sweep (= batch) order, with causes.
    pub victims: Vec<(SampleId, EvictCause)>,
    /// Post-sweep priority keys of surviving just-accessed samples.
    pub kept_keys: Vec<(SampleId, u64)>,
}

/// Next use of `sample` on `node` at or after window-relative iteration
/// `from`, recomputed by a plain forward scan over the epoch schedules (the
/// oracle-free ground truth).
pub fn naive_next_use(
    epochs: &[&EpochSchedule],
    node: usize,
    sample: SampleId,
    from: usize,
) -> Option<usize> {
    let mut global = 0usize;
    for e in epochs {
        for h in 0..e.iterations() {
            if global >= from && e.node_iteration(h, node).contains(&sample) {
                return Some(global);
            }
            global += 1;
        }
    }
    None
}

/// Recompute the expected §4.4 sweep outcome with no oracle and no shared
/// code: eviction rules straight from the paper, next-use by forward scan.
///
/// `consumed` is the number of window iterations already consumed
/// (the oracle's cursor *after* its post-access `advance()`), and
/// `current_iteration` the matching global iteration index of the batch
/// just finished.
#[allow(clippy::too_many_arguments)]
pub fn naive_sweep_expectation(
    epochs: &[&EpochSchedule],
    node: usize,
    base_iteration: u64,
    consumed: usize,
    cache: &NodeCache,
    directory: &Directory,
    batch: &[SampleId],
    h: usize,
    iters_per_epoch: usize,
    current_iteration: u64,
) -> SweepExpectation {
    let horizon = (2 * iters_per_epoch).saturating_sub(h) as u64;
    let mut out = SweepExpectation::default();
    let mut gone: Vec<SampleId> = Vec::new();
    for &s in batch {
        if gone.contains(&s) || !cache.contains(s) {
            continue;
        }
        match naive_next_use(epochs, node, s, consumed) {
            None => {
                if directory.held_elsewhere(s, node) {
                    out.victims.push((s, EvictCause::ReuseCount));
                    gone.push(s);
                } else {
                    out.kept_keys.push((s, 1)); // just above the never-reused key 0
                }
            }
            Some(next_rel) => {
                let next = base_iteration + next_rel as u64;
                let distance = next.saturating_sub(current_iteration);
                if distance > horizon {
                    out.victims.push((s, EvictCause::ReuseDistance));
                    gone.push(s);
                } else {
                    out.kept_keys.push((s, u64::MAX - next));
                }
            }
        }
    }
    // A sample can appear twice in a node batch (two GPUs drew it); the
    // second pass re-derives the same decision, so dedup kept keys.
    out.kept_keys.dedup();
    out
}

/// A crafted scenario in which a swept sample's next reuse sits *exactly*
/// on the §4.4 horizon `2I − h`.
///
/// This boundary is unreachable in production: the executors rebuild the
/// oracle every epoch over a 2-epoch window with `base = epoch · I`, so the
/// farthest reachable next use from iteration `g = base + h` is the last
/// window iteration `base + 2I − 1`, giving a maximum distance of
/// `2I − h − 1` — one short of the horizon. The strict `distance > 2I − h`
/// rule therefore never fires in a standard run, and an off-by-one error in
/// the horizon is an *equivalent mutant* there. Exercising the equality
/// case (and detecting the mutant) needs a 3-epoch oracle window and
/// hand-laid-out schedules, which is what this fixture provides.
#[derive(Debug, Clone)]
pub struct BoundaryFixture {
    pub spec: ScheduleSpec,
    /// Three hand-laid-out epochs forming the oracle window.
    pub epochs: Vec<EpochSchedule>,
    /// Node under test.
    pub node: usize,
    /// Iteration whose sweep hits the boundary.
    pub h: usize,
    /// The sample whose reuse distance equals the horizon exactly.
    pub sample: SampleId,
}

/// Build the horizon-equality scenario: 2 nodes × 1 GPU, `|B| = 1`, 8
/// samples, `I = 4`. Node 0's per-epoch streams are `[1, 2, 0, 3]`,
/// `[1, 2, 3, 4]`, `[0, 1, 2, 3]`: sample 0 is consumed at global
/// iteration 2 (`h = 2`) and next reused at global iteration 8, so its
/// reuse distance is `6 == 2 · 4 − 2` — exactly the horizon, which the
/// paper's strict `>` keeps resident.
pub fn horizon_boundary_fixture() -> BoundaryFixture {
    let spec = ScheduleSpec {
        nodes: 2,
        gpus_per_node: 1,
        batch_size: 1,
        dataset_len: 8,
        seed: 0,
    };
    let ids = |v: [u32; 8]| v.into_iter().map(SampleId).collect::<Vec<_>>();
    // Layout: position 2h is node 0's iteration-h sample, 2h + 1 node 1's.
    let e0 = EpochSchedule::from_order(spec, 0, ids([1, 4, 2, 5, 0, 6, 3, 7]));
    let e1 = EpochSchedule::from_order(spec, 1, ids([1, 5, 2, 6, 3, 0, 4, 7]));
    let e2 = EpochSchedule::from_order(spec, 2, ids([0, 4, 1, 5, 2, 6, 3, 7]));
    BoundaryFixture {
        spec,
        epochs: vec![e0, e1, e2],
        node: 0,
        h: 2,
        sample: SampleId(0),
    }
}

/// Run `ReuseAwareEvictor::after_iteration_detailed` on clones of the given
/// state and compare every decision against [`naive_sweep_expectation`].
#[allow(clippy::too_many_arguments)]
pub fn check_sweep(
    epochs: &[&EpochSchedule],
    node: usize,
    base_iteration: u64,
    oracle: &NodeOracle,
    cache: &NodeCache,
    directory: &Directory,
    batch: &[SampleId],
    h: usize,
    iters_per_epoch: usize,
    current_iteration: u64,
) -> Result<(), String> {
    let consumed = (oracle.current_iteration() - base_iteration) as usize;
    let expect = naive_sweep_expectation(
        epochs,
        node,
        base_iteration,
        consumed,
        cache,
        directory,
        batch,
        h,
        iters_per_epoch,
        current_iteration,
    );

    let mut cache = cache.clone();
    let mut directory = directory.clone();
    let mut victims = Vec::new();
    let report = ReuseAwareEvictor.after_iteration_detailed(
        &mut cache,
        &mut directory,
        oracle,
        node,
        batch,
        h,
        iters_per_epoch,
        current_iteration,
        &mut victims,
    );

    if victims != expect.victims {
        return Err(format!(
            "victim sequence mismatch at iter {current_iteration} (h={h}):\n  evictor: {victims:?}\n  naive:   {:?}",
            expect.victims
        ));
    }
    let by_count = victims
        .iter()
        .filter(|(_, c)| *c == EvictCause::ReuseCount)
        .count() as u64;
    let by_dist = victims.len() as u64 - by_count;
    if report.by_reuse_count != by_count || report.by_reuse_distance != by_dist {
        return Err(format!(
            "report counts disagree with victim list: {report:?} vs {by_count}+{by_dist}"
        ));
    }
    for &(s, want_key) in &expect.kept_keys {
        match cache.key_of(s) {
            Some(got) if got == want_key => {}
            got => {
                return Err(format!(
                    "post-sweep key of {s:?} mismatch at iter {current_iteration}: evictor {got:?}, naive {want_key}"
                ));
            }
        }
    }
    for &(s, _) in &expect.victims {
        if cache.contains(s) {
            return Err(format!("{s:?} expected evicted but still resident"));
        }
        if directory.holds(s, node) {
            return Err(format!(
                "{s:?} evicted but directory still lists node {node}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_data::ScheduleSpec;

    #[test]
    fn ref_cache_matches_basic_trace() {
        let ops = [
            Op::Insert {
                id: 1,
                bytes: 40,
                key: 10,
            },
            Op::Insert {
                id: 2,
                bytes: 40,
                key: 20,
            },
            Op::Insert {
                id: 3,
                bytes: 40,
                key: 30,
            }, // evicts 1
            Op::SetKey { id: 2, key: 5 },
            Op::Insert {
                id: 4,
                bytes: 40,
                key: 40,
            }, // evicts 2 (key 5)
            Op::Evict { id: 3 },
            Op::Evict { id: 3 }, // absent: both must agree it is a no-op
        ];
        check_trace(100, EvictOrder::SmallestKeyFirst, &ops).unwrap();
    }

    #[test]
    fn ref_cache_matches_pinning_trace() {
        let ops = [
            Op::Insert {
                id: 1,
                bytes: 50,
                key: 1,
            },
            Op::Insert {
                id: 2,
                bytes: 50,
                key: 2,
            },
            Op::Pin { id: 1 },
            Op::Insert {
                id: 3,
                bytes: 50,
                key: 3,
            }, // must skip pinned 1
            Op::Pin { id: 2 },
            Op::Pin { id: 3 },
            Op::Insert {
                id: 4,
                bytes: 10,
                key: 4,
            }, // all pinned: rejected
            Op::Unpin { id: 3 },
            Op::Insert {
                id: 4,
                bytes: 10,
                key: 4,
            },
        ];
        check_trace(100, EvictOrder::SmallestKeyFirst, &ops).unwrap();
    }

    #[test]
    fn never_evict_trace_agrees() {
        let ops = [
            Op::Insert {
                id: 1,
                bytes: 60,
                key: 0,
            },
            Op::Insert {
                id: 2,
                bytes: 60,
                key: 0,
            }, // rejected
            Op::Insert {
                id: 1,
                bytes: 60,
                key: 9,
            }, // key refresh of resident
        ];
        check_trace(100, EvictOrder::NeverEvict, &ops).unwrap();
    }

    #[test]
    fn shrinker_reaches_local_minimum() {
        // Failure predicate: trace still inserts ids 1 and 2 (a stand-in for
        // "the bug still reproduces").
        let fails = |ops: &[Op]| {
            let has = |want: u32| {
                ops.iter()
                    .any(|op| matches!(op, Op::Insert { id, .. } if *id == want))
            };
            has(1) && has(2)
        };
        let noise: Vec<Op> = (10..40)
            .map(|i| Op::Insert {
                id: i,
                bytes: 1,
                key: i as u64,
            })
            .chain([
                Op::Insert {
                    id: 1,
                    bytes: 1,
                    key: 1,
                },
                Op::Pin { id: 7 },
                Op::Insert {
                    id: 2,
                    bytes: 1,
                    key: 2,
                },
                Op::Unpin { id: 7 },
            ])
            .collect();
        let minimal = shrink_trace(&noise, fails);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
        assert!(fails(&minimal));
    }

    #[test]
    fn sweep_checker_accepts_conformant_evictor() {
        let spec = ScheduleSpec {
            nodes: 2,
            gpus_per_node: 2,
            batch_size: 2,
            dataset_len: 64,
            seed: 11,
        };
        let e0 = EpochSchedule::generate(spec, 0);
        let e1 = EpochSchedule::generate(spec, 1);
        let epochs = [&e0, &e1];
        let iters = e0.iterations();
        let node = 0;
        let mut oracle = NodeOracle::build(node, &epochs, 0);
        let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
        let mut directory = Directory::new(spec.nodes);
        for h in 0..iters {
            let batch: Vec<SampleId> = e0.node_iteration(h, node).to_vec();
            for &s in &batch {
                let key =
                    ReuseAwareEvictor::priority_key(oracle.future_of(s).map(|f| f.next_iteration));
                if cache.insert(s, 1, key).inserted {
                    directory.add(s, node);
                }
            }
            oracle.advance();
            check_sweep(
                &epochs, node, 0, &oracle, &cache, &directory, &batch, h, iters, h as u64,
            )
            .unwrap();
            // Apply the sweep for real so the next iteration starts from the
            // evolved state.
            let mut victims = Vec::new();
            ReuseAwareEvictor.after_iteration_detailed(
                &mut cache,
                &mut directory,
                &oracle,
                node,
                &batch,
                h,
                iters,
                h as u64,
                &mut victims,
            );
        }
    }
}
