//! Differential conformance harness: proves the executors agree.
//!
//! The workspace has three independent execution models of the same paper:
//! the timing-only DES (`lobster_pipeline::des`), the analytical cluster
//! executor (`lobster_pipeline::ClusterSim`), and the live threaded engine
//! (`lobster_runtime::engine`). Each exists because the others can't do its
//! job — and each is a chance for the reproduction to silently drift from
//! the paper's semantics. This crate makes the redundancy load-bearing
//! (NoPFS validated its simulator the same way; FoundationDB made the
//! pattern famous):
//!
//! * [`des::DesCluster`] — a fourth, event-driven implementation of the
//!   full cluster semantics on the `lobster-sim` kernel, re-deriving the
//!   §4.4 rules from the paper rather than sharing `lobster-core`'s code.
//! * [`compare`] — field-by-field comparison of [`RunObservables`] records
//!   with a structured first-divergence report.
//! * [`runner`] — drives one seeded config through the executors
//!   ([`runner::run_differential`]), checks the live engine's delivery
//!   record against the seeded schedule
//!   ([`runner::check_engine_delivery`]), and arms mutation canaries
//!   ([`runner::run_canary`]).
//! * [`refmodel`] — model-based checking of the cache layer and §4.4
//!   eviction rules against naive reference models, plus a greedy trace
//!   shrinker (the vendored proptest shim does not shrink).
//! * [`mutation`] — the deliberate single-rule flips the canary mode uses
//!   to prove the harness can actually detect a broken rule.
//!
//! [`RunObservables`]: lobster_pipeline::observe::RunObservables

pub mod compare;
pub mod des;
pub mod mutation;
pub mod refmodel;
pub mod runner;

pub use compare::{compare_runs, Divergence};
pub use des::{DesCluster, DesRun};
pub use mutation::Mutation;
pub use refmodel::{
    check_sweep, check_trace, horizon_boundary_fixture, naive_next_use, naive_sweep_expectation,
    shrink_trace, BoundaryFixture, Op, RefCache, SweepExpectation,
};
pub use runner::{
    check_engine_delivery, conformance_config, crash_conformance_config,
    elastic_conformance_config, engine_epoch_multisets, record_divergence_flight,
    run_boundary_canary, run_canary, run_differential, run_differential_recorded,
    workload_conformance_config, workload_conformance_matrix, CanaryOutcome, DiffSummary,
    DES_MODEL, ENGINE_MODEL, SIM_MODEL, SWEEP_MODEL, TIME_TOL_S,
};
