//! Mutation canaries: deliberate single-rule flips in the conformance DES.
//!
//! A differential harness is only as good as its sensitivity. Each variant
//! here flips exactly one §4.4 eviction/prefetch rule *inside the
//! conformance executor only* (production code paths never see these), and
//! the canary mode asserts the differential runner detects the flip as a
//! divergence. A canary that goes undetected means the harness has a blind
//! spot and the CI gate fails.

use serde::{Deserialize, Serialize};

/// Which single rule the DES deliberately gets wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// No mutation: the conformant executor.
    None,
    /// Drop the "unless no other node holds a copy" guard of the
    /// reuse-count policy: dead samples are evicted even when they are the
    /// last copy anywhere.
    SkipLastCopyGuard,
    /// Shrink the reuse-distance horizon from `2I − h` to `2I − h − 1`,
    /// evicting samples whose next reuse sits exactly on the threshold.
    HorizonOffByOne,
    /// Invert the prefetch-coordination guard: prefetching displaces
    /// *sooner*-needed residents instead of stopping for them.
    InvertPrefetchGuard,
    /// Use LRU clocks instead of reuse-distance priority keys on insert
    /// under the ReuseAware strategy (wrong capacity-victim order).
    CapacityKeyLru,
    /// Freeze the elastic worker-pool controller at its initial split: a
    /// controller that refuses to flip roles when the preprocessing work
    /// factor steps up mid-run. Only observable on elastic configurations
    /// (the role-flip decision sequence diverges at the step).
    NeverSteal,
    /// Ignore the crash schedule entirely: the DES keeps every node alive.
    /// Only observable on configurations with a crash schedule (the
    /// membership-transition sequence diverges at the first crash tick, and
    /// the tier splits diverge once the survivors' fostered batches go
    /// missing).
    DropCrash,
    /// Run the telemetry detector bank with mutated thresholds (lower spike
    /// bar, shorter warmup, inverted CUSUM slack). The per-tick frames stay
    /// identical; only the anomaly sequence diverges — proving the harness
    /// compares detector output itself, not just the inputs it's fed.
    DetectorThreshold,
    /// Collapse per-sample preprocessing cost to the dataset-wide mean when
    /// sizing `t_prep` — the exact simplification a mean-based
    /// implementation would make. Equivalent on unit-cost datasets (the
    /// ratio is exactly 1.0); on a bimodal-cost workload the per-node work
    /// diverges whenever a batch's slow-sample mix departs from the mean.
    UniformCost,
}

impl Mutation {
    /// CLI / report name of the flipped rule.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipLastCopyGuard => "skip-last-copy-guard",
            Mutation::HorizonOffByOne => "horizon-off-by-one",
            Mutation::InvertPrefetchGuard => "invert-prefetch-guard",
            Mutation::CapacityKeyLru => "capacity-key-lru",
            Mutation::NeverSteal => "never-steal",
            Mutation::DropCrash => "drop-crash",
            Mutation::DetectorThreshold => "detector-threshold",
            Mutation::UniformCost => "uniform-cost",
        }
    }

    /// Parse a CLI name.
    pub fn by_name(name: &str) -> Option<Mutation> {
        Some(match name {
            "none" => Mutation::None,
            "skip-last-copy-guard" => Mutation::SkipLastCopyGuard,
            "horizon-off-by-one" => Mutation::HorizonOffByOne,
            "invert-prefetch-guard" => Mutation::InvertPrefetchGuard,
            "capacity-key-lru" => Mutation::CapacityKeyLru,
            "never-steal" => Mutation::NeverSteal,
            "drop-crash" => Mutation::DropCrash,
            "detector-threshold" => Mutation::DetectorThreshold,
            "uniform-cost" => Mutation::UniformCost,
            _ => return None,
        })
    }

    /// Every real mutation (excluding `None`).
    pub fn all() -> [Mutation; 8] {
        [
            Mutation::SkipLastCopyGuard,
            Mutation::HorizonOffByOne,
            Mutation::InvertPrefetchGuard,
            Mutation::CapacityKeyLru,
            Mutation::NeverSteal,
            Mutation::DropCrash,
            Mutation::DetectorThreshold,
            Mutation::UniformCost,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in Mutation::all() {
            assert_eq!(Mutation::by_name(m.name()), Some(m));
        }
        assert_eq!(Mutation::by_name("none"), Some(Mutation::None));
        assert_eq!(Mutation::by_name("bogus"), None);
    }
}
