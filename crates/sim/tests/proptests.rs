//! Property-based tests for the simulation kernel invariants.

use lobster_sim::{
    PsLink, Scheduler, ServerPool, SimDuration, SimTime, SimWorld, Xoshiro256StarStar,
};
use proptest::prelude::*;

proptest! {
    /// Fisher–Yates shuffle always yields a permutation of its input.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..512) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// `below(bound)` is always strictly below its bound.
    #[test]
    fn below_respects_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Same seed ⇒ same stream; the generator is pure state.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// FCFS pool: completions never precede arrival + service, total busy
    /// time is the sum of service times, and jobs on one server never
    /// complete earlier than an earlier-submitted job would allow.
    #[test]
    fn server_pool_fcfs_invariants(
        servers in 1usize..8,
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..64),
    ) {
        let mut pool = ServerPool::new(servers);
        let mut now = SimTime::ZERO;
        let mut total_service = 0u64;
        let mut completions = Vec::new();
        for (gap, service) in jobs {
            now += SimDuration::from_nanos(gap);
            let done = pool.submit(now, SimDuration::from_nanos(service));
            prop_assert!(done >= now + SimDuration::from_nanos(service));
            completions.push(done);
            total_service += service;
        }
        prop_assert_eq!(pool.total_busy(), SimDuration::from_nanos(total_service));
        prop_assert_eq!(pool.drained_at(), *completions.iter().max().unwrap());
    }

    /// PS link conserves bytes: everything started is eventually delivered.
    #[test]
    fn pslink_conserves_bytes(
        capacity in 1.0f64..1e6,
        flows in proptest::collection::vec((0u64..1_000_000, 0.0f64..1e6), 1..32),
    ) {
        let mut link = PsLink::new(capacity);
        let mut now = SimTime::ZERO;
        let mut total = 0.0;
        for (gap, bytes) in flows {
            now += SimDuration::from_nanos(gap);
            link.start_flow(now, bytes);
            total += bytes;
        }
        let mut guard = 0;
        while link.active() > 0 {
            let t = link.next_completion(now).expect("active link must complete");
            prop_assert!(t >= now);
            now = t;
            link.complete(now);
            guard += 1;
            prop_assert!(guard < 10_000, "completion loop did not converge");
        }
        // 1-byte tolerance per flow for nanosecond rounding.
        prop_assert!((link.delivered_bytes - total).abs() <= 32.0,
            "delivered {} vs started {}", link.delivered_bytes, total);
    }
}

/// Events with identical timestamps fire in submission order no matter how
/// they were interleaved with earlier/later times.
#[derive(Default)]
struct OrderWorld {
    fired: Vec<u32>,
}

impl SimWorld for OrderWorld {
    type Event = u32;
    fn handle(&mut self, e: u32, _s: &mut Scheduler<u32>) {
        self.fired.push(e);
    }
}

proptest! {
    #[test]
    fn same_time_events_fire_fifo(times in proptest::collection::vec(0u64..100, 1..128)) {
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.at(SimTime(t), i as u32);
        }
        let mut world = OrderWorld::default();
        lobster_sim::run(&mut world, &mut sched, None, 1_000_000);
        // Expected order: stable sort by time.
        let mut expected: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        expected.sort_by_key(|&(t, _)| t);
        let expected: Vec<u32> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(world.fired, expected);
    }
}
