//! A processor-sharing (fluid) bandwidth link.
//!
//! Models a shared medium — here, the parallel file system's aggregate
//! bandwidth — where `n` concurrent transfers each progress at `capacity / n`
//! (optionally degraded further by a congestion factor). This is the classic
//! fluid approximation used by flow-level network simulators.
//!
//! The link is driven externally: the owner asks [`PsLink::next_completion`]
//! for the earliest finishing flow, schedules a DES event at that time, and
//! calls [`PsLink::advance`]/[`PsLink::complete`] when it fires. Any state
//! change (flow arrival or departure) changes every flow's rate, so progress
//! is settled lazily via `advance` before each mutation.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of an in-flight transfer on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining_bytes: f64,
}

/// Congestion shaping: effective per-flow fair share may be further reduced
/// when many flows compete (e.g. Lustre's random small reads degrade beyond
/// raw fair sharing).
pub type CongestionFn = fn(active_flows: usize) -> f64;

fn no_congestion(_: usize) -> f64 {
    1.0
}

/// A processor-sharing link with fixed aggregate capacity.
#[derive(Debug, Clone)]
pub struct PsLink {
    capacity_bytes_per_sec: f64,
    flows: BTreeMap<FlowId, Flow>,
    next_id: u64,
    last_update: SimTime,
    congestion: CongestionFn,
    /// Total bytes fully delivered since construction (for accounting tests).
    pub delivered_bytes: f64,
}

impl PsLink {
    /// Create a link with the given aggregate capacity.
    pub fn new(capacity_bytes_per_sec: f64) -> Self {
        assert!(
            capacity_bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        PsLink {
            capacity_bytes_per_sec,
            flows: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            congestion: no_congestion,
            delivered_bytes: 0.0,
        }
    }

    /// Replace the congestion function (default: pure fair sharing).
    pub fn with_congestion(mut self, f: CongestionFn) -> Self {
        self.congestion = f;
        self
    }

    /// Number of active flows.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Aggregate configured capacity in bytes/second.
    pub fn capacity(&self) -> f64 {
        self.capacity_bytes_per_sec
    }

    /// Current per-flow rate in bytes/second.
    pub fn per_flow_rate(&self) -> f64 {
        let n = self.flows.len();
        if n == 0 {
            return 0.0;
        }
        self.capacity_bytes_per_sec * (self.congestion)(n) / n as f64
    }

    /// Settle all flows' progress up to `now`. Must be called (and is called
    /// internally) before any state change.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        if now <= self.last_update || self.flows.is_empty() {
            self.last_update = self.last_update.max(now);
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        let rate = self.per_flow_rate();
        let drained = rate * dt;
        for flow in self.flows.values_mut() {
            let d = drained.min(flow.remaining_bytes);
            flow.remaining_bytes -= d;
            self.delivered_bytes += d;
        }
        self.last_update = now;
    }

    /// Begin a transfer of `bytes` at time `now`; returns its id.
    pub fn start_flow(&mut self, now: SimTime, bytes: f64) -> FlowId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "flow size must be finite and non-negative"
        );
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                remaining_bytes: bytes,
            },
        );
        id
    }

    /// Earliest time at which some flow finishes, given no further arrivals.
    /// Returns `None` when the link is idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let min_remaining = self
            .flows
            .values()
            .map(|f| f.remaining_bytes)
            .fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        let rate = self.per_flow_rate();
        if rate <= 0.0 {
            return None;
        }
        let dt = min_remaining / rate;
        // Round up to 1ns so a completion strictly after `last_update` never
        // lands before it; the subsequent `complete` call tolerates epsilon.
        Some(now.max(self.last_update) + SimDuration::from_secs_f64(dt).max(SimDuration(1)))
    }

    /// Remove and return all flows finished by `now` (within a 1-byte
    /// tolerance to absorb nanosecond rounding).
    pub fn complete(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes <= 1.0)
            .map(|(&id, _)| id)
            .collect();
        for id in &done {
            if let Some(f) = self.flows.remove(id) {
                self.delivered_bytes += f.remaining_bytes;
            }
        }
        done
    }

    /// Forcibly cancel a flow (e.g. aborted prefetch); returns remaining bytes.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        self.flows.remove(&id).map(|f| f.remaining_bytes)
    }

    /// Remaining bytes of a flow, if it is still active.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.remaining_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn single_flow_finishes_at_bytes_over_capacity() {
        let mut link = PsLink::new(100.0); // 100 B/s
        let id = link.start_flow(SimTime::ZERO, 50.0);
        let done_at = link.next_completion(SimTime::ZERO).unwrap();
        assert!((done_at.as_secs_f64() - 0.5).abs() < 1e-6, "{done_at}");
        let done = link.complete(done_at);
        assert_eq!(done, vec![id]);
        assert_eq!(link.active(), 0);
    }

    #[test]
    fn two_flows_share_capacity_equally() {
        let mut link = PsLink::new(100.0);
        let a = link.start_flow(SimTime::ZERO, 100.0);
        let b = link.start_flow(SimTime::ZERO, 100.0);
        // Each proceeds at 50 B/s → both done at t=2s.
        let t = link.next_completion(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        let mut done = link.complete(t);
        done.sort();
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut link = PsLink::new(100.0);
        let a = link.start_flow(SimTime::ZERO, 100.0);
        // At t=0.5s, a has 50 bytes left; b arrives with 100 bytes.
        let b = link.start_flow(secs(0.5), 100.0);
        // Both at 50 B/s: a finishes after another 1.0s → t=1.5s.
        let t = link.next_completion(secs(0.5)).unwrap();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-6, "{t}");
        assert_eq!(link.complete(t), vec![a]);
        // b has 50 bytes left, now alone at 100 B/s → done at t=2.0s.
        let t2 = link.next_completion(t).unwrap();
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-5, "{t2}");
        assert_eq!(link.complete(t2), vec![b]);
    }

    #[test]
    fn departure_speeds_up_remaining_flow() {
        let mut link = PsLink::new(100.0);
        let _a = link.start_flow(SimTime::ZERO, 10.0);
        let b = link.start_flow(SimTime::ZERO, 100.0);
        // a done at t=0.2s (50 B/s each); b then has 90 left at 100 B/s.
        let t1 = link.next_completion(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 0.2).abs() < 1e-6);
        link.complete(t1);
        let t2 = link.next_completion(t1).unwrap();
        assert!((t2.as_secs_f64() - 1.1).abs() < 1e-5, "{t2}");
        assert_eq!(link.complete(t2), vec![b]);
    }

    #[test]
    fn congestion_function_degrades_throughput() {
        fn half_when_shared(n: usize) -> f64 {
            if n > 1 {
                0.5
            } else {
                1.0
            }
        }
        let mut link = PsLink::new(100.0).with_congestion(half_when_shared);
        link.start_flow(SimTime::ZERO, 100.0);
        link.start_flow(SimTime::ZERO, 100.0);
        // Effective aggregate 50 B/s → 25 B/s each → done at t=4s.
        let t = link.next_completion(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 4.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn bytes_are_conserved() {
        let mut link = PsLink::new(1000.0);
        let mut total = 0.0;
        let mut now = SimTime::ZERO;
        // Start staggered flows, then drain everything.
        for i in 0..10 {
            let bytes = 100.0 * (i + 1) as f64;
            total += bytes;
            link.start_flow(now, bytes);
            now += SimDuration::from_millis(50);
        }
        link.advance(now);
        while link.active() > 0 {
            let t = link.next_completion(now).unwrap();
            now = t;
            link.complete(now);
        }
        assert!(
            (link.delivered_bytes - total).abs() < 1.0,
            "delivered {} vs {}",
            link.delivered_bytes,
            total
        );
    }

    #[test]
    fn cancel_removes_flow_and_reports_remaining() {
        let mut link = PsLink::new(100.0);
        let a = link.start_flow(SimTime::ZERO, 100.0);
        let rem = link.cancel(secs(0.5), a).unwrap();
        assert!((rem - 50.0).abs() < 1e-6);
        assert_eq!(link.active(), 0);
        assert!(link.next_completion(secs(0.5)).is_none());
    }

    #[test]
    fn idle_link_reports_no_completion() {
        let link = PsLink::new(10.0);
        assert!(link.next_completion(SimTime::ZERO).is_none());
        assert_eq!(link.per_flow_rate(), 0.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = PsLink::new(10.0);
        let id = link.start_flow(SimTime::ZERO, 0.0);
        let t = link.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(link.complete(t), vec![id]);
    }
}
