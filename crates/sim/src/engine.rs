//! A minimal, deterministic discrete-event engine.
//!
//! The engine is deliberately small: a time-ordered queue of typed events and
//! a [`SimWorld`] trait the embedding system implements. Events scheduled for
//! the same instant fire in insertion order (a monotonically increasing
//! sequence number breaks ties), which makes every run bit-for-bit
//! reproducible regardless of heap internals.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event plus its firing time and tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue handed to [`SimWorld::handle`] so handlers can schedule
/// follow-up events.
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the firing time of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; we clamp to `now` so the event still fires (and order is
    /// preserved), but debug builds assert.
    pub fn at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
    }

    /// Schedule `event` after a delay relative to the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Firing time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some(s)
    }
}

/// The embedding system: owns all state and reacts to events.
pub trait SimWorld {
    type Event;

    /// Handle one event at time `sched.now()`. May schedule more events.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events processed.
    pub events: u64,
    /// Simulated time of the last processed event.
    pub end_time: SimTime,
    /// True if the run stopped because the event limit was hit rather than
    /// the queue draining (indicates a runaway model).
    pub truncated: bool,
}

/// Drive `world` until the event queue drains, `until` (if given) is passed,
/// or `max_events` events have been processed.
pub fn run<W: SimWorld>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: Option<SimTime>,
    max_events: u64,
) -> RunStats {
    let mut events = 0u64;
    while let Some(&Reverse(Scheduled { at, .. })) = sched.heap.peek() {
        if let Some(limit) = until {
            if at > limit {
                break;
            }
        }
        if events >= max_events {
            return RunStats {
                events,
                end_time: sched.now,
                truncated: true,
            };
        }
        let s = sched.pop().expect("peeked event vanished");
        world.handle(s.event, sched);
        events += 1;
    }
    RunStats {
        events,
        end_time: sched.now,
        truncated: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records firing order and chains a fixed number of events.
    struct Recorder {
        fired: Vec<(u64, u32)>,
        chain_left: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Tag(u32),
        Chain,
    }

    impl SimWorld for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Tag(t) => self.fired.push((sched.now().as_nanos(), t)),
                Ev::Chain => {
                    if self.chain_left > 0 {
                        self.chain_left -= 1;
                        sched.after(SimDuration::from_nanos(10), Ev::Chain);
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut w = Recorder {
            fired: vec![],
            chain_left: 0,
        };
        let mut s = Scheduler::new();
        s.at(SimTime(30), Ev::Tag(3));
        s.at(SimTime(10), Ev::Tag(1));
        s.at(SimTime(20), Ev::Tag(2));
        // Two events at the same instant keep insertion order.
        s.at(SimTime(20), Ev::Tag(4));
        let stats = run(&mut w, &mut s, None, 1000);
        assert_eq!(w.fired, vec![(10, 1), (20, 2), (20, 4), (30, 3)]);
        assert_eq!(stats.events, 4);
        assert!(!stats.truncated);
        assert_eq!(stats.end_time, SimTime(30));
    }

    #[test]
    fn chained_events_advance_time() {
        let mut w = Recorder {
            fired: vec![],
            chain_left: 5,
        };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, Ev::Chain);
        let stats = run(&mut w, &mut s, None, 1000);
        assert_eq!(stats.events, 6); // initial + 5 chained
        assert_eq!(stats.end_time, SimTime(50));
    }

    #[test]
    fn until_bound_stops_early_but_keeps_queue() {
        let mut w = Recorder {
            fired: vec![],
            chain_left: 0,
        };
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.at(SimTime(i * 100), Ev::Tag(i as u32));
        }
        let stats = run(&mut w, &mut s, Some(SimTime(450)), 1000);
        assert_eq!(stats.events, 5);
        assert_eq!(s.pending(), 5);
        // Resume picks up where we left off.
        let stats2 = run(&mut w, &mut s, None, 1000);
        assert_eq!(stats2.events, 5);
        assert_eq!(w.fired.len(), 10);
    }

    #[test]
    fn max_events_truncates_runaway_models() {
        let mut w = Recorder {
            fired: vec![],
            chain_left: u32::MAX,
        };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, Ev::Chain);
        let stats = run(&mut w, &mut s, None, 100);
        assert!(stats.truncated);
        assert_eq!(stats.events, 100);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        struct PastWorld {
            second_fired_at: Option<SimTime>,
        }
        #[derive(Debug)]
        enum E2 {
            First,
            Second,
        }
        impl SimWorld for PastWorld {
            type Event = E2;
            fn handle(&mut self, e: E2, s: &mut Scheduler<E2>) {
                match e {
                    E2::First => {
                        // In release builds this clamps rather than panicking.
                        if cfg!(not(debug_assertions)) {
                            s.at(SimTime::ZERO, E2::Second);
                        } else {
                            s.at(s.now(), E2::Second);
                        }
                    }
                    E2::Second => self.second_fired_at = Some(s.now()),
                }
            }
        }
        let mut w = PastWorld {
            second_fired_at: None,
        };
        let mut s = Scheduler::new();
        s.at(SimTime(100), E2::First);
        run(&mut w, &mut s, None, 10);
        assert_eq!(w.second_fired_at, Some(SimTime(100)));
    }
}
