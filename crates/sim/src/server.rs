//! A deterministic FCFS multi-server queue.
//!
//! Models a pool of `k` identical servers (threads) serving jobs in arrival
//! order: each submitted job is assigned to the earliest-free server and its
//! completion time is returned immediately. This is exact for FCFS with
//! known service times and needs no event traffic of its own — the caller
//! schedules one DES event at the returned completion time.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of identical FCFS servers.
#[derive(Debug, Clone)]
pub struct ServerPool {
    /// Min-heap of times at which each server becomes free.
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
    /// Total busy time accumulated across all servers (utilization metric).
    busy: SimDuration,
    /// Total jobs served.
    jobs: u64,
}

impl ServerPool {
    /// Create a pool with `servers` servers, all free at t=0.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        ServerPool {
            free_at,
            servers,
            busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Resize the pool at time `now`. Growing adds servers free at `now`;
    /// shrinking removes the *earliest-free* servers first (a busy server
    /// finishes its current job before disappearing, which matches how a
    /// thread pool drains on reconfiguration).
    pub fn resize(&mut self, now: SimTime, servers: usize) {
        assert!(servers > 0, "a server pool needs at least one server");
        while self.servers < servers {
            self.free_at.push(Reverse(now));
            self.servers += 1;
        }
        while self.servers > servers {
            self.free_at.pop();
            self.servers -= 1;
        }
    }

    /// Submit a job arriving at `now` with the given service time; returns
    /// its completion time under FCFS.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("pool has at least one server");
        let start = free.max(now);
        let done = start + service;
        self.free_at.push(Reverse(done));
        self.busy += service;
        self.jobs += 1;
        done
    }

    /// Earliest time a new job could start service.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.free_at
            .peek()
            .map(|Reverse(t)| (*t).max(now))
            .unwrap_or(now)
    }

    /// Time by which all currently queued work completes.
    pub fn drained_at(&self) -> SimTime {
        self.free_at
            .iter()
            .map(|Reverse(t)| *t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate busy time (for utilization accounting).
    pub fn total_busy(&self) -> SimDuration {
        self.busy
    }

    /// Jobs served so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut p = ServerPool::new(1);
        let d = SimDuration::from_millis(10);
        let t1 = p.submit(SimTime::ZERO, d);
        let t2 = p.submit(SimTime::ZERO, d);
        let t3 = p.submit(SimTime::ZERO, d);
        assert_eq!(t1, SimTime(10_000_000));
        assert_eq!(t2, SimTime(20_000_000));
        assert_eq!(t3, SimTime(30_000_000));
    }

    #[test]
    fn two_servers_run_jobs_in_parallel() {
        let mut p = ServerPool::new(2);
        let d = SimDuration::from_millis(10);
        let t1 = p.submit(SimTime::ZERO, d);
        let t2 = p.submit(SimTime::ZERO, d);
        let t3 = p.submit(SimTime::ZERO, d);
        assert_eq!(t1, SimTime(10_000_000));
        assert_eq!(t2, SimTime(10_000_000));
        assert_eq!(t3, SimTime(20_000_000));
    }

    #[test]
    fn idle_server_starts_at_arrival_time() {
        let mut p = ServerPool::new(1);
        let t = p.submit(SimTime(5_000), SimDuration::from_nanos(100));
        assert_eq!(t, SimTime(5_100));
    }

    #[test]
    fn grow_adds_capacity_immediately() {
        let mut p = ServerPool::new(1);
        let d = SimDuration::from_millis(10);
        p.submit(SimTime::ZERO, d); // busy until 10ms
        p.resize(SimTime::ZERO, 2);
        let t = p.submit(SimTime::ZERO, d);
        assert_eq!(t, SimTime(10_000_000), "new server takes the job at once");
    }

    #[test]
    fn shrink_removes_idle_servers_first() {
        let mut p = ServerPool::new(2);
        let d = SimDuration::from_millis(10);
        p.submit(SimTime::ZERO, d); // one server busy until 10ms
        p.resize(SimTime::ZERO, 1);
        // The remaining server is the busy one; next job queues behind it.
        let t = p.submit(SimTime::ZERO, d);
        assert_eq!(t, SimTime(20_000_000));
    }

    #[test]
    fn utilization_accounting_accumulates() {
        let mut p = ServerPool::new(4);
        for _ in 0..8 {
            p.submit(SimTime::ZERO, SimDuration::from_millis(5));
        }
        assert_eq!(p.total_busy(), SimDuration::from_millis(40));
        assert_eq!(p.jobs_served(), 8);
        assert_eq!(p.drained_at(), SimTime(10_000_000));
    }

    #[test]
    fn earliest_start_reflects_backlog() {
        let mut p = ServerPool::new(1);
        assert_eq!(p.earliest_start(SimTime(7)), SimTime(7));
        p.submit(SimTime::ZERO, SimDuration::from_millis(1));
        assert_eq!(p.earliest_start(SimTime::ZERO), SimTime(1_000_000));
    }
}
