//! # lobster-sim
//!
//! Deterministic discrete-event simulation substrate for the Lobster
//! reproduction (ICPP '22, Liu/Nicolae/Li).
//!
//! The paper evaluates Lobster on a 24-node A100 cluster with a Lustre
//! parallel file system; none of that hardware is available here, so — per
//! the reproduction's substitution rules — the cluster is modelled by a
//! small, exact discrete-event kernel:
//!
//! * [`time`] — integer-nanosecond simulated time.
//! * [`rng`] — self-contained seeded PRNGs (SplitMix64 / xoshiro256**) so the
//!   deterministic-prefetching property the paper relies on is bit-exact.
//! * [`engine`] — typed event queue with FIFO tie-breaking and a
//!   [`engine::SimWorld`] trait.
//! * [`pslink`] — processor-sharing fluid link (PFS aggregate bandwidth).
//! * [`server`] — deterministic FCFS multi-server queue (thread pools).
//!
//! Everything in this crate is deterministic: same seed, same event stream,
//! same results, on every platform.

pub mod engine;
pub mod pslink;
pub mod rng;
pub mod server;
pub mod time;

pub use engine::{run, RunStats, Scheduler, SimWorld};
pub use pslink::{FlowId, PsLink};
pub use rng::{derive_seed, derive_seed2, SplitMix64, Xoshiro256StarStar};
pub use server::ServerPool;
pub use time::{SimDuration, SimTime};
