//! Self-contained deterministic pseudo-random number generation.
//!
//! The whole point of Lobster-style deterministic prefetching is that the
//! training-sample access order is a pure function of a seed (paper §2:
//! "the seed of the pseudo-random number generator is known in advance").
//! We therefore implement our own small, well-specified generators rather
//! than depending on an external crate whose stream might change across
//! versions: [`SplitMix64`] for seeding/stream-splitting and
//! [`Xoshiro256StarStar`] as the workhorse generator.
//!
//! Both algorithms are public domain (Blackman & Vigna). The test suite pins
//! the reference output vectors so the streams can never silently change.

/// SplitMix64: a tiny generator mainly used to expand a 64-bit seed into the
/// 256-bit state of [`Xoshiro256StarStar`], and to derive independent
/// per-entity streams (per node, per epoch) from a base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Derive a sub-seed for stream `stream` from `base`. Used to give each
/// (node, epoch) pair its own independent but reproducible shuffle stream,
/// mirroring the paper's "fixing the pseudorandom number generator seed of
/// each node such that it is a function of a fixed seed and the node id".
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // Feed both words through SplitMix so that adjacent stream ids do not
    // produce correlated seeds.
    let mut sm = SplitMix64::new(base ^ stream.wrapping_mul(0xA24BAED4963EE407));
    sm.next_u64()
}

/// Derive a sub-seed for a two-coordinate stream `(a, b)` from `base`.
/// Used by the fault-injection subsystem to give every `(node, fetch_index)`
/// pair its own reproducible draw without correlations between neighbouring
/// indices or nodes.
#[inline]
pub fn derive_seed2(base: u64, a: u64, b: u64) -> u64 {
    derive_seed(derive_seed(base, a), b)
}

/// xoshiro256**: fast, high-quality 256-bit-state generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, per the authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's nearly-divisionless
    /// method (unbiased). `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal deviate via Box–Muller (uses two uniforms; the sine
    /// branch is discarded so successive calls stay independent and simple).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 0.0 {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Log-normal deviate with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle in place. The resulting permutation is a pure
    /// function of the generator state at call time.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fork an independent generator for a labelled sub-stream.
    pub fn fork(&mut self, label: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(derive_seed(self.next_u64(), label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SplitMix64 reference implementation with
    /// seed 1234567: pins our stream forever.
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423,
                4593380528125082431,
                16408922859458223821,
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        let mut c = Xoshiro256StarStar::seed_from_u64(43);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_bounds_and_covers_small_ranges() {
        let mut r = Xoshiro256StarStar::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let mut v: Vec<u32> = (0..1000).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..1000).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn uniform_mean_is_close_to_half() {
        let mut r = Xoshiro256StarStar::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = Xoshiro256StarStar::seed_from_u64(17);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        assert_ne!(s0, s1);
        // Stable across calls.
        assert_eq!(derive_seed(99, 0), s0);
    }

    #[test]
    fn derive_seed2_separates_both_coordinates() {
        let s = derive_seed2(7, 3, 9);
        assert_eq!(derive_seed2(7, 3, 9), s, "stable across calls");
        assert_ne!(derive_seed2(7, 3, 10), s, "second coordinate matters");
        assert_ne!(derive_seed2(7, 4, 9), s, "first coordinate matters");
        assert_ne!(derive_seed2(8, 3, 9), s, "base matters");
        // Swapping coordinates must not collide (the hash is not symmetric).
        assert_ne!(derive_seed2(7, 9, 3), s);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = Xoshiro256StarStar::seed_from_u64(5);
        let mut f0 = base.fork(0);
        let mut f1 = base.fork(1);
        let a: Vec<u64> = (0..10).map(|_| f0.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| f1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = Xoshiro256StarStar::seed_from_u64(23);
        for _ in 0..1000 {
            assert!(r.lognormal(10.0, 1.0) > 0.0);
        }
    }
}
