//! Simulated time.
//!
//! All simulation time is tracked in integer nanoseconds so that event
//! ordering is exact and runs are bit-for-bit reproducible. Floating point
//! enters only at the edges (converting modelled throughputs into durations),
//! and is rounded once, at construction.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// in the future, which keeps callers panic-free on degenerate inputs.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and NaN inputs clamp to zero; overflow clamps to `MAX`.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Build from fractional milliseconds (clamping like [`from_secs_f64`]).
    ///
    /// [`from_secs_f64`]: SimDuration::from_secs_f64
    #[inline]
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration::from_secs_f64(ms / 1e3)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t.since(SimTime(7_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        // 1 ns resolution
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let big = SimTime(u64::MAX - 1);
        assert_eq!(big + SimDuration::from_secs(10), SimTime::MAX);
        assert_eq!(
            SimDuration(3).saturating_sub(SimDuration(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration(u64::MAX) * 2, SimDuration::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(25));
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimDuration(5).max(SimDuration(9)), SimDuration(9));
        assert_eq!(SimDuration(5).min(SimDuration(9)), SimDuration(5));
    }
}
