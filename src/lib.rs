//! # lobster-repro
//!
//! A from-scratch Rust reproduction of **Lobster: Load Balance-Aware I/O
//! for Distributed DNN Training** (Liu, Nicolae, Li — ICPP '22).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic discrete-event kernel (time, events, PRNGs,
//!   fluid links, server pools).
//! * [`data`] — synthetic ImageNet-scale datasets, seeded distributed
//!   shuffling, and the reuse-distance oracle.
//! * [`storage`] — the three-tier storage hierarchy (`T_l`, `T_r`,
//!   `T_PFS`).
//! * [`cache`] — node-local caches with priority eviction and the
//!   distributed replica directory.
//! * [`core`] — the paper's contribution: performance model (Eq. 1–3),
//!   piece-wise linear regression, Algorithm 1, preprocessing governor,
//!   reuse-aware eviction, and all loader policies (PyTorch, DALI, NoPFS,
//!   Lobster + ablations).
//! * [`pipeline`] — the cluster executor that turns a policy into epoch
//!   times, hit ratios, utilization, and imbalance counts.
//! * [`runtime`] — a real multi-threaded loading engine applying the
//!   policies live.
//! * [`metrics`] — histograms, summaries, tables, result sinks.
//! * [`conformance`] — differential conformance harness proving the
//!   executors implement the same semantics (DESIGN.md §10).
//!
//! ```
//! use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};
//! use lobster_repro::core::LobsterPolicy;
//!
//! let dataset = lobster_repro::data::Dataset::generate(
//!     "demo", 4096, lobster_repro::data::SizeDistribution::Constant { bytes: 100_000 }, 1);
//! let cfg = ConfigBuilder::new()
//!     .nodes(1).gpus_per_node(4).batch_size(16)
//!     .cache_bytes(dataset.total_bytes() / 4)
//!     .epochs(2)
//!     .dataset(dataset)
//!     .build();
//! let (report, _) = ClusterSim::new(cfg, Box::new(LobsterPolicy::full())).run();
//! assert!(report.mean_epoch_s() > 0.0);
//! ```

pub use lobster_bench as bench;
pub use lobster_cache as cache;
pub use lobster_conformance as conformance;
pub use lobster_core as core;
pub use lobster_data as data;
pub use lobster_metrics as metrics;
pub use lobster_pipeline as pipeline;
pub use lobster_runtime as runtime;
pub use lobster_sim as sim;
pub use lobster_storage as storage;
