//! Accounting identities the executor must satisfy for any configuration:
//! every scheduled access is classified exactly once, epoch walls add up,
//! and caches never exceed capacity (checked indirectly through hit-count
//! bounds).

use lobster_repro::core::policy_by_name;
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary small topologies, policies, and cache sizes: the run
    /// completes, access accounting balances, and wall times are positive
    /// and additive.
    #[test]
    fn executor_accounting_balances(
        nodes in 1usize..3,
        gpus in 1usize..3,
        batch in 4usize..12,
        cache_div in 1u64..20,
        policy_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let names = ["pytorch", "dali", "nopfs", "lobster", "lobster_th", "lobster_evict"];
        let dataset = Dataset::generate(
            "prop",
            2048,
            SizeDistribution::Uniform { lo: 10_000, hi: 120_000 },
            seed,
        );
        let cache = (dataset.total_bytes() / cache_div).max(200_000);
        let cfg = ConfigBuilder::new()
            .nodes(nodes)
            .gpus_per_node(gpus)
            .batch_size(batch)
            .cache_bytes(cache)
            .epochs(2)
            .seed(seed)
            .dataset(dataset)
            .build();
        let iters = cfg.iterations_per_epoch();
        prop_assume!(iters > 0);
        let per_epoch = (iters * batch * nodes * gpus) as u64;

        let (report, _) = ClusterSim::new(cfg, policy_by_name(names[policy_idx]).unwrap()).run();

        for e in &report.epochs {
            prop_assert_eq!(e.local_hits + e.remote_hits + e.misses, per_epoch);
            prop_assert!(e.wall_s > 0.0);
            prop_assert!(e.gpu_utilization > 0.0 && e.gpu_utilization <= 1.0);
            prop_assert!(e.imbalanced_iterations <= e.iterations);
            prop_assert_eq!(e.iterations, iters as u64);
        }
        let sum: f64 = report.epochs.iter().map(|e| e.wall_s).sum();
        prop_assert!((sum - report.total_wall_s).abs() < 1e-6);
        // Single-node runs can never have remote hits.
        if nodes == 1 {
            prop_assert!(report.epochs.iter().all(|e| e.remote_hits == 0));
        }
    }

    /// First-epoch, first-touch accesses are always misses: local hits in
    /// epoch 0 can never exceed the reuse opportunities within the epoch
    /// (which are zero — a sample appears once per epoch), except through
    /// prefetching, which only moves *future* accesses into the cache.
    #[test]
    fn epoch_zero_hits_come_only_from_prefetch(
        policy_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let names = ["pytorch", "dali", "nopfs", "lobster"];
        let dataset = Dataset::generate(
            "prop0",
            1024,
            SizeDistribution::Constant { bytes: 50_000 },
            seed,
        );
        let cfg = ConfigBuilder::new()
            .nodes(1)
            .gpus_per_node(2)
            .batch_size(8)
            .cache_bytes(dataset.total_bytes())
            .epochs(1)
            .seed(seed)
            .dataset(dataset)
            .build();
        let (report, _) =
            ClusterSim::new(cfg, policy_by_name(names[policy_idx]).unwrap()).run();
        let e0 = &report.epochs[0];
        // Without prefetching, zero epoch-0 hits; with it, hits ≤ prefetched.
        prop_assert!(
            e0.local_hits <= e0.prefetched,
            "epoch-0 hits {} must be explained by prefetches {}",
            e0.local_hits,
            e0.prefetched
        );
    }
}
