//! Telemetry plane end-to-end guarantees (DESIGN.md §14).
//!
//! Four contracts are proven here, at whole-run scale:
//!
//! 1. **Cross-executor anomaly conformance**: the analytical `ClusterSim`
//!    and the event-driven conformance DES emit byte-identical anomaly
//!    sequences on the same seeded configuration — five seeds, elastic and
//!    crash topologies.
//! 2. **Replay determinism**: the live engine's online anomaly sequence
//!    equals a fresh `DetectorBank::replay` over its own recorded frames.
//! 3. **Attribution**: a scheduled crash and rejoin fire membership-change
//!    anomalies at exactly their scheduled ticks, carrying the masks.
//! 4. **Zero allocation**: the disabled telemetry facet never allocates,
//!    and the *enabled* steady-state `record_tick` path is allocation-free
//!    across 1× ring wraps and both rollup-ring wraps (counting-allocator
//!    proof, same harness as `tests/flight_recorder.rs`).
//!
//! The allocation counter is process-global, so every measured window and
//! the allocation-heavy runs serialize on one gate mutex.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lobster_repro::conformance::runner::{
    crash_conformance_config, elastic_conformance_config, run_differential,
};
use lobster_repro::core::policy_by_name;
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::{
    DetectorBank, DetectorConfig, DetectorKind, FlightTier, Instruments, TickScalars,
    DEFAULT_TELEMETRY_CAPACITY,
};
use lobster_repro::pipeline::ClusterSim;
use lobster_repro::runtime::{run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::CrashSpec;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Tests in this binary run on parallel harness threads but share the one
/// process-wide allocation counter; each test holds this for its measured
/// window (or, for the engine tests, their allocation storms).
static GATE: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// 1. Cross-executor anomaly conformance (five seeds, two topologies).
// ---------------------------------------------------------------------

#[test]
fn anomaly_sequences_agree_across_executors_for_five_seeds() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut total_firings = 0usize;
    for seed in 11..=15u64 {
        for cfg in [
            elastic_conformance_config(seed),
            crash_conformance_config(seed),
        ] {
            run_differential(&cfg, "lobster").unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            let policy = policy_by_name("lobster").unwrap();
            let (_, obs) = ClusterSim::new(cfg, policy).run_observed();
            total_firings += obs.anomalies.len();
        }
    }
    // The observable must not be vacuous across the seed sweep: the
    // elastic work-factor step and the crash schedules trip detectors.
    assert!(
        total_firings > 0,
        "five-seed sweep fired no anomalies — conformance would be vacuous"
    );
}

// ---------------------------------------------------------------------
// 2 + 3. Engine: replay determinism and crash/rejoin attribution.
// ---------------------------------------------------------------------

fn engine_dataset(n: usize) -> Dataset {
    Dataset::generate(
        "it-telemetry",
        n,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        29,
    )
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed: 31,
        train: Duration::from_micros(200),
        adaptive: true,
        ..EngineConfig::default()
    }
}

#[test]
fn engine_anomaly_sequence_replays_exactly_from_recorded_frames() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ds = engine_dataset(96);
    let cfg = engine_cfg();
    let store = Arc::new(SyntheticStore::new(ds, Duration::from_micros(20), 0.0));
    let ins = Instruments::enabled();
    let report = run_with(store, cfg, ins.clone());
    assert!(!report.aborted);

    let snap = ins.telemetry_snapshot().expect("enabled instruments");
    // 96 / (4 × 2) = 12 iterations per epoch × 2 epochs — one frame each,
    // all retained (far below the 1× ring capacity).
    assert_eq!(snap.ticks, report.iterations);
    assert_eq!(snap.frames.len(), report.iterations as usize);
    assert_eq!(snap.anomalies_dropped, 0);
    // Frames carry the run's delivery accounting tick by tick.
    let delivered: u64 = snap.frames.iter().map(|f| f.scalars.delivered).sum();
    assert_eq!(delivered, report.delivered);

    // Replay determinism: a fresh bank over the recorded frames must
    // reproduce the online sequence byte-for-byte.
    let scalars: Vec<TickScalars> = snap.frames.iter().map(|f| f.scalars).collect();
    let replayed = DetectorBank::replay(DetectorConfig::standard(), &scalars);
    assert_eq!(
        replayed, snap.anomalies,
        "online and replayed anomaly sequences must be identical"
    );
    assert_eq!(report.anomalies, snap.anomalies);
}

#[test]
fn engine_crash_and_rejoin_fire_membership_anomalies_at_their_ticks() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ds = engine_dataset(96);
    let cfg = EngineConfig {
        crashes: vec![CrashSpec {
            node: 1,
            tick: 2,
            rejoin: Some(5),
        }],
        peer_nodes: 3,
        ..engine_cfg()
    };
    let store = Arc::new(SyntheticStore::new(ds, Duration::ZERO, 0.0));
    let ins = Instruments::enabled();
    let report = run_with(store, cfg, ins.clone());
    assert!(!report.aborted, "a scheduled crash must be healed");

    // The frames record the membership mask while node 1 is down.
    let snap = ins.telemetry_snapshot().unwrap();
    for f in &snap.frames {
        let want = if (2..5).contains(&f.scalars.tick) {
            2
        } else {
            0
        };
        assert_eq!(
            f.scalars.down_mask, want,
            "down mask at tick {}",
            f.scalars.tick
        );
    }

    // Exactly two membership-change anomalies: the crash at its tick
    // (mask 0 → 2) and the rejoin at its tick (mask 2 → 0).
    let membership: Vec<_> = report
        .anomalies
        .iter()
        .filter(|a| a.kind == DetectorKind::MembershipChange)
        .collect();
    assert_eq!(membership.len(), 2, "{:?}", report.anomalies);
    assert_eq!(
        (
            membership[0].tick,
            membership[0].baseline,
            membership[0].value
        ),
        (2, 0, 2),
        "crash attribution"
    );
    assert_eq!(
        (
            membership[1].tick,
            membership[1].baseline,
            membership[1].value
        ),
        (5, 2, 0),
        "rejoin attribution"
    );
    assert!(membership.iter().all(|a| a.severity == 1));
}

// ---------------------------------------------------------------------
// 4. Zero-allocation contracts.
// ---------------------------------------------------------------------

fn quiet_frame(tick: u64) -> TickScalars {
    TickScalars {
        tick,
        // Gentle variation exercises the arithmetic without crossing any
        // detector threshold (devs stay far under the min_dev_us floor).
        gap_us: 1_000 + tick % 3,
        iter_us: 50_000 + tick % 11,
        local_hits: 6,
        remote_hits: 1,
        misses: 1,
        prefetched: 2,
        evictions: 1,
        retries: 0,
        delivered: 8,
        preproc_workers: 2,
        loader_workers: 3,
        down_mask: 0,
    }
}

#[test]
fn disabled_telemetry_facet_allocates_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ins = Instruments::disabled();
    let before = allocations();
    for i in 0..10_000u64 {
        ins.telemetry_fetch_us(FlightTier::Cache, 40 + (i % 7));
        ins.telemetry_fetch_us(FlightTier::Store, 400 + (i % 13));
        assert_eq!(ins.record_tick(quiet_frame(i)), 0);
    }
    assert_eq!(ins.anomaly_count(), 0);
    assert!(ins.telemetry_snapshot().is_none());
    assert_eq!(
        allocations() - before,
        0,
        "disabled telemetry path must not allocate"
    );
}

#[test]
fn enabled_steady_state_record_tick_allocates_nothing_across_wraps() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ins = Instruments::enabled();
    // Warm-up: rings, rollup accumulators, and per-tier tick histograms
    // are preallocated at construction; a few records settle any lazy
    // state before the measured window opens.
    for i in 0..8u64 {
        ins.telemetry_fetch_us(FlightTier::Cache, 50);
        ins.record_tick(quiet_frame(i));
    }

    // 10 008 total ticks: the 1× ring (512) wraps ~19×, the 8× rollup
    // ring (256 slots, one per 8 ticks) wraps ~4×, and the 64× ring
    // (128 slots, one per 64 ticks) wraps once — every boundary the
    // cascade has is crossed inside the measured window.
    let before = allocations();
    for i in 8..10_008u64 {
        ins.telemetry_fetch_us(FlightTier::Cache, 40 + (i % 7));
        ins.telemetry_fetch_us(FlightTier::Store, 400 + (i % 13));
        ins.record_tick(quiet_frame(i));
    }
    assert_eq!(
        allocations() - before,
        0,
        "enabled steady-state record_tick path must not allocate"
    );

    let snap = ins.telemetry_snapshot().unwrap();
    assert_eq!(snap.ticks, 10_008, "every tick recorded");
    assert_eq!(
        snap.frames.len(),
        DEFAULT_TELEMETRY_CAPACITY,
        "1× ring wrapped"
    );
    assert_eq!(snap.anomalies.len(), 0, "quiet frames must stay quiet");
    assert_eq!(snap.anomalies_dropped, 0);
    // The rollup cascade really ran: both rings are at capacity.
    assert_eq!(snap.rollup8.len(), 256);
    assert_eq!(snap.rollup64.len(), 128);
}
