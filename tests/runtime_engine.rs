//! End-to-end tests of the live multi-threaded engine: integrity under
//! contention, skewed stores, and deadlock-freedom at awkward sizes.

use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::Instruments;
use lobster_repro::runtime::{expected_integrity, run, run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::RetryPolicy;
use std::sync::Arc;
use std::time::Duration;

/// Run `f` under a watchdog thread: a deadlock becomes a clean panic after
/// `limit` instead of a test that never returns, and no assertion depends
/// on how fast the machine happens to be. The limit only bounds hangs — it
/// is far above any plausible healthy runtime, so a loaded CI box cannot
/// trip it.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(_) => panic!("watchdog: engine run did not complete within {limit:?} (deadlock?)"),
    }
}

fn store(samples: usize, latency: Duration) -> Arc<SyntheticStore> {
    let ds = Dataset::generate(
        "it-engine",
        samples,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 20_000,
        },
        21,
    );
    Arc::new(SyntheticStore::new(ds, latency, 0.0))
}

#[test]
fn many_consumers_complete_with_integrity() {
    let cfg = EngineConfig {
        consumers: 6,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        cache_bytes: 64 << 20,
        work_factor: 1,
        train: Duration::from_micros(300),
        adaptive: true,
        epochs: 2,
        seed: 5,
        retry: RetryPolicy::default(),
        ..EngineConfig::default()
    };
    let s = store(240, Duration::from_micros(100));
    let expected = expected_integrity(s.dataset(), &cfg);
    let report = with_watchdog(Duration::from_secs(120), move || run(s, cfg));
    assert_eq!(report.iterations, 20); // 240/(6×4)=10 per epoch × 2
    assert_eq!(report.integrity, expected);
}

#[test]
fn more_loaders_than_consumers_is_fine() {
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 6,
        preproc_threads: 3,
        adaptive: true,
        epochs: 1,
        ..EngineConfig::default()
    };
    let s = store(64, Duration::ZERO);
    let expected = expected_integrity(s.dataset(), &cfg);
    let report = run(s, cfg);
    assert_eq!(report.integrity, expected);
}

#[test]
fn tiny_cache_still_delivers_correct_bytes() {
    // Cache fits almost nothing: constant churn, but never corruption.
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 2,
        preproc_threads: 2,
        cache_bytes: 30_000,
        work_factor: 1,
        train: Duration::from_micros(100),
        adaptive: true,
        epochs: 2,
        seed: 9,
        retry: RetryPolicy::default(),
        ..EngineConfig::default()
    };
    let s = store(96, Duration::ZERO);
    let expected = expected_integrity(s.dataset(), &cfg);
    let report = run(Arc::clone(&s), cfg);
    assert_eq!(report.integrity, expected);
    // With a ~2-sample cache the store must be hit a lot.
    assert!(
        report.store_fetches > 96,
        "fetches {}",
        report.store_fetches
    );
}

#[test]
fn slow_store_does_not_deadlock_the_barrier() {
    // The regression this pins: preprocessing blocked on one consumer's
    // full channel while that consumer waited at the barrier. With credit
    // pacing + unbounded delivery this must finish promptly.
    let cfg = EngineConfig {
        consumers: 4,
        batch_size: 8,
        loader_threads: 4,
        preproc_threads: 2,
        cache_bytes: 32 << 20,
        work_factor: 2,
        train: Duration::from_millis(1),
        adaptive: true,
        epochs: 2,
        seed: 42,
        retry: RetryPolicy::default(),
        ..EngineConfig::default()
    };
    let ds = Dataset::generate(
        "deadlock",
        512,
        SizeDistribution::Uniform {
            lo: 8_000,
            hi: 64_000,
        },
        11,
    );
    let s = Arc::new(SyntheticStore::new(ds, Duration::from_micros(300), 100e6));
    // Completion is the logical barrier: the watchdog turns a deadlock into
    // a clean failure, instead of a hung test plus a wall-clock assertion
    // that a loaded CI machine could trip spuriously.
    let report = with_watchdog(Duration::from_secs(120), move || run(s, cfg));
    assert_eq!(report.delivered, 1024);
    assert!(!report.aborted, "run must drain, not bail out");
}

#[test]
fn instrumented_adaptive_run_logs_decisions_and_balanced_cache_counters() {
    let cfg = EngineConfig {
        consumers: 4,
        batch_size: 8,
        loader_threads: 4,
        preproc_threads: 2,
        cache_bytes: 8 << 20,
        work_factor: 1,
        train: Duration::from_millis(1),
        adaptive: true,
        epochs: 2,
        seed: 3,
        retry: RetryPolicy::default(),
        ..EngineConfig::default()
    };
    let s = store(256, Duration::from_micros(50));
    let expected = expected_integrity(s.dataset(), &cfg);
    let ins = Instruments::enabled();
    let report = run_with(s, cfg, ins.clone());
    assert_eq!(
        report.integrity, expected,
        "instrumentation must not disturb the data path"
    );

    // The adaptive controller ran: at least one decision was recorded, and
    // each landed in the trace as a controller_decision instant.
    let decisions = ins.decisions();
    assert!(
        !decisions.is_empty(),
        "adaptive run must log at least one controller decision"
    );
    assert!(decisions.iter().all(|d| d.threads_after.len() == 4));
    let trace = ins.chrome_trace_json().expect("enabled bundle has a trace");
    let doc: serde_json::Value = serde_json::from_str(&trace).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let n_decision_events = events
        .iter()
        .filter(|e| e["name"].as_str() == Some("controller_decision"))
        .count();
    assert_eq!(n_decision_events, decisions.len());

    // Accounting invariant: the cache is consulted exactly once per fetch
    // request, so hits + misses must equal the fetch count.
    let snap = ins.metrics_snapshot();
    let hits = snap.get("engine.cache_hits").unwrap();
    let misses = snap.get("engine.cache_misses").unwrap();
    let fetches = snap.get("engine.fetches").unwrap();
    assert_eq!(
        hits + misses,
        fetches,
        "hits {hits} + misses {misses} != fetches {fetches}"
    );
    // Every scheduled sample triggers exactly one fetch request.
    assert_eq!(fetches as u64, report.delivered);
    assert_eq!(
        snap.get("engine.delivered").unwrap() as u64,
        report.delivered
    );
}

#[test]
fn disabled_instruments_change_nothing() {
    let cfg = EngineConfig {
        epochs: 1,
        ..EngineConfig::default()
    };
    let s = store(64, Duration::ZERO);
    let expected = expected_integrity(s.dataset(), &cfg);
    let ins = Instruments::disabled();
    let report = run_with(s, cfg, ins.clone());
    assert_eq!(report.integrity, expected);
    assert!(ins.metrics_snapshot().is_empty());
    assert!(ins.decisions().is_empty());
    assert!(ins.chrome_trace_json().is_none());
}

#[test]
fn iteration_times_are_recorded_for_every_iteration() {
    let cfg = EngineConfig {
        epochs: 3,
        ..EngineConfig::default()
    };
    let s = store(64, Duration::ZERO);
    let report = run(s, cfg.clone());
    let iters_per_epoch = 64 / (cfg.consumers * cfg.batch_size);
    assert_eq!(
        report.iteration_secs.len(),
        iters_per_epoch * cfg.epochs as usize
    );
    // Individual iterations can be faster than the clock resolution, so
    // `> 0` per entry would be timing-dependent; non-negative per entry
    // plus a positive total is the invariant that always holds.
    assert!(report
        .iteration_secs
        .iter()
        .all(|&t| t.is_finite() && t >= 0.0));
    assert!(report.iteration_secs.iter().sum::<f64>() > 0.0);
}
