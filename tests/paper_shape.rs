//! The paper's headline claims, as executable assertions at reduced scale.
//! These run the same harness as the figure binaries (smaller, faster) and
//! pin the *shape* of every result: orderings and rough factors, not
//! absolute numbers.

use lobster_repro::bench::{paper_config, run_policy, BenchParams, DatasetKind};
use lobster_repro::core::{models, policy_by_name};
use lobster_repro::pipeline::RunReport;

const PARAMS: BenchParams = BenchParams {
    scale: 512,
    epochs: 3,
    seed: 42,
};

fn run_1k(nodes: usize, name: &str) -> RunReport {
    run_policy(
        paper_config(DatasetKind::ImageNet1k, nodes, models::resnet50(), PARAMS),
        policy_by_name(name).unwrap(),
    )
}

#[test]
fn figure7_lobster_beats_every_baseline() {
    let pt = run_1k(1, "pytorch");
    let dali = run_1k(1, "dali");
    let nopfs = run_1k(1, "nopfs");
    let lobster = run_1k(1, "lobster");
    // Lobster fastest, 1.3–2.0× over PyTorch (paper's overall claim).
    let speedup = pt.mean_epoch_s() / lobster.mean_epoch_s();
    assert!(
        speedup > 1.3 && speedup < 2.5,
        "Lobster vs PyTorch: {speedup:.2}x"
    );
    assert!(lobster.mean_epoch_s() < dali.mean_epoch_s());
    assert!(lobster.mean_epoch_s() < nopfs.mean_epoch_s());
    // NoPFS is the strongest baseline.
    assert!(nopfs.mean_epoch_s() < pt.mean_epoch_s());
    assert!(nopfs.mean_epoch_s() < dali.mean_epoch_s());
}

#[test]
fn figure7c_multi_node_widens_the_gap() {
    let pt = run_policy(
        paper_config(DatasetKind::ImageNet22k, 8, models::resnet50(), PARAMS),
        policy_by_name("pytorch").unwrap(),
    );
    let lobster = run_policy(
        paper_config(DatasetKind::ImageNet22k, 8, models::resnet50(), PARAMS),
        policy_by_name("lobster").unwrap(),
    );
    let speedup = pt.mean_epoch_s() / lobster.mean_epoch_s();
    assert!(
        speedup > 1.4,
        "multi-node speedup {speedup:.2}x should approach the paper's 2.0x"
    );
}

#[test]
fn section55_hit_ratio_ordering() {
    let hit = |name: &str| run_1k(1, name).mean_hit_ratio();
    let (pt, dali, nopfs, lobster) = (hit("pytorch"), hit("dali"), hit("nopfs"), hit("lobster"));
    assert!(pt <= dali + 1e-9, "pytorch {pt} vs dali {dali}");
    assert!(dali <= nopfs + 1e-9, "dali {dali} vs nopfs {nopfs}");
    assert!(nopfs < lobster, "nopfs {nopfs} vs lobster {lobster}");
    // The abstract's headline: Lobster improves on NoPFS by >10 points.
    assert!(
        lobster - nopfs > 0.10,
        "gap {:.1} points",
        (lobster - nopfs) * 100.0
    );
}

#[test]
fn figure8_lobster_minimizes_imbalance() {
    let imb = |name: &str| run_1k(1, name).imbalance_fraction();
    let lobster = imb("lobster");
    let baselines: Vec<f64> = ["pytorch", "dali", "nopfs"]
        .iter()
        .map(|n| imb(n))
        .collect();
    // No baseline does better, and the worst baseline is strictly worse.
    for (name, &other) in ["pytorch", "dali", "nopfs"].iter().zip(&baselines) {
        assert!(
            lobster <= other,
            "lobster {lobster} must not lose to {name} {other}"
        );
    }
    let worst = baselines.iter().copied().fold(0.0, f64::max);
    assert!(
        lobster < worst,
        "lobster {lobster} vs worst baseline {worst}"
    );
}

#[test]
fn figure10_gpu_utilization_ordering() {
    let util = |name: &str| run_1k(1, name).mean_gpu_utilization();
    let lobster = util("lobster");
    for name in ["pytorch", "dali", "nopfs"] {
        assert!(lobster > util(name), "lobster utilization must be highest");
    }
}

#[test]
fn figure11_ablation_shape() {
    let epoch = |name: &str| run_1k(1, name).mean_epoch_s();
    let dali = epoch("dali");
    let th = epoch("lobster_th");
    let evict = epoch("lobster_evict");
    let full = epoch("lobster");
    // Both halves beat DALI; thread management contributes more; the full
    // system is at least as good as either half.
    assert!(th < dali, "lobster_th {th} vs dali {dali}");
    assert!(evict < dali, "lobster_evict {evict} vs dali {dali}");
    assert!(
        th <= evict,
        "thread management ({th}) should contribute more than eviction ({evict})"
    );
    assert!(full <= th * 1.02, "full lobster {full} vs th {th}");
}

#[test]
fn figure11_eviction_helps_small_models_more() {
    let gain = |model: lobster_repro::core::ModelProfile| {
        let dali = run_policy(
            paper_config(DatasetKind::ImageNet1k, 1, model.clone(), PARAMS),
            policy_by_name("dali").unwrap(),
        );
        let evict = run_policy(
            paper_config(DatasetKind::ImageNet1k, 1, model, PARAMS),
            policy_by_name("lobster_evict").unwrap(),
        );
        dali.mean_epoch_s() / evict.mean_epoch_s()
    };
    let small = gain(models::squeezenet());
    let large = gain(models::vgg11());
    assert!(
        small >= large,
        "eviction gain for squeezenet ({small:.2}x) should be ≥ vgg11 ({large:.2}x)"
    );
}

#[test]
fn figure9_loaders_share_the_learning_curve() {
    use lobster_repro::pipeline::{max_gap, simulate_accuracy};
    let model = models::resnet50();
    let a = simulate_accuracy("pytorch", &model, 60, 42, 1);
    let b = simulate_accuracy("lobster", &model, 60, 42, 2);
    assert!(
        max_gap(&a, &b) < 0.03,
        "curves must track: gap {}",
        max_gap(&a, &b)
    );
    assert!(a.epochs_to_reach(0.74).is_some());
    assert!(b.epochs_to_reach(0.74).is_some());
}
