//! Differential conformance suite (DESIGN.md §10): the analytical
//! executor, the event-driven conformance DES, and the live engine must
//! implement the same paper semantics.
//!
//! Three layers of evidence:
//!
//! 1. **Differential runs** — the same seeded `ExperimentConfig` through
//!    `ClusterSim` and `DesCluster`, agreement demanded on every invariant
//!    observable (tier splits, eviction order, Algorithm-1 decisions,
//!    prefetch counts, delivered multisets, barrier timeline).
//! 2. **Fault × conformance matrix** — the live engine under seeded
//!    transient faults must still deliver exactly the schedule-determined
//!    per-epoch sample multisets the simulators agree on.
//! 3. **Mutation canaries** — every deliberate single-rule flip must be
//!    detected, otherwise the harness itself is broken.

use lobster_repro::cache::{Directory, EvictOrder, NodeCache};
use lobster_repro::conformance::{
    check_engine_delivery, check_sweep, conformance_config, crash_conformance_config,
    elastic_conformance_config, engine_epoch_multisets, horizon_boundary_fixture, naive_next_use,
    run_boundary_canary, run_canary, run_differential, workload_conformance_config, CanaryOutcome,
    Mutation,
};
use lobster_repro::core::{policy_by_name, EvictCause, ModelProfile, ReuseAwareEvictor};
use lobster_repro::data::{
    Dataset, EpochSchedule, NodeOracle, SampleId, ScheduleSpec, SizeDistribution,
};
use lobster_repro::metrics::Instruments;
use lobster_repro::pipeline::{
    ClusterSim, ConfigBuilder, ElasticSimConfig, MembershipObservable, RoleFlipObservable,
};
use lobster_repro::runtime::{run_with, schedule_spec, EngineConfig, SyntheticStore};
use lobster_repro::storage::FaultSpec;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// 1. Differential runs: ClusterSim vs the conformance DES.
// ---------------------------------------------------------------------

/// The ISSUE's acceptance matrix: ≥5 seeds × the four paper policies, all
/// observables equal between the analytical executor and the DES.
#[test]
fn differential_agreement_across_seeds_and_policies() {
    for seed in [3, 5, 7, 11, 13] {
        let cfg = conformance_config(seed);
        for policy in ["pytorch", "dali", "nopfs", "lobster"] {
            let summary = run_differential(&cfg, policy)
                .unwrap_or_else(|d| panic!("seed {seed} policy {policy} diverged:\n{d}"));
            assert!(summary.iterations > 0);
            assert!(
                summary.demand_accesses > 0,
                "seed {seed} {policy}: no demand traffic recorded"
            );
        }
    }
}

/// The eviction-heavy ablation policies ride the same harness.
#[test]
fn differential_agreement_for_ablation_policies() {
    let cfg = conformance_config(29);
    for policy in ["lobster_th", "lobster_evict", "minio"] {
        run_differential(&cfg, policy).unwrap_or_else(|d| panic!("policy {policy} diverged:\n{d}"));
    }
}

/// Degenerate shuffle: a single-sample dataset still round-trips through
/// both executors (every epoch is the identity permutation `[0]`).
#[test]
fn differential_agreement_on_single_sample_dataset() {
    let dataset = Dataset::generate(
        "conformance-degenerate",
        1,
        SizeDistribution::Constant { bytes: 10_000 },
        5,
    );
    let cfg = ConfigBuilder::new()
        .nodes(1)
        .gpus_per_node(1)
        .batch_size(1)
        .cache_bytes(1 << 20)
        .dataset(dataset)
        .epochs(3)
        .seed(5)
        .build();
    for policy in ["pytorch", "lobster"] {
        let summary = run_differential(&cfg, policy)
            .unwrap_or_else(|d| panic!("degenerate config diverged for {policy}:\n{d}"));
        assert_eq!(summary.iterations, 3, "1 iteration per epoch × 3 epochs");
    }
}

// ---------------------------------------------------------------------
// 2. Fault × conformance matrix: live engine vs the simulators.
// ---------------------------------------------------------------------

fn matrix_dataset(seed: u64) -> Dataset {
    Dataset::generate(
        "conformance-matrix",
        96,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        seed,
    )
}

fn matrix_engine_cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        consumers: 4,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed,
        train: Duration::from_micros(100),
        ..EngineConfig::default()
    }
}

/// Delivered-sample multisets per epoch depend only on `(W, |B|, |D|,
/// seed)`, not on node topology or timing — so a live 1×4 engine run is
/// directly comparable to a simulated 2×2 cluster, fault injection and
/// all. The engine must heal transients and stalls without changing *what*
/// it delivers.
#[test]
fn faulty_engine_matches_simulator_delivered_multisets() {
    let seed = 41;
    let dataset = matrix_dataset(seed);
    let ecfg = matrix_engine_cfg(seed);

    // Simulator side: same W=4, |B|=4, dataset, and seed on a 2×2 cluster.
    let sim_cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(4)
        .cache_bytes(dataset.total_bytes() / 3)
        .dataset(dataset.clone())
        .epochs(2)
        .seed(seed)
        .build();
    let (_, sim_obs) = ClusterSim::new(sim_cfg, policy_by_name("lobster").unwrap()).run_observed();

    let fault_specs = [
        FaultSpec::default(), // clean row of the matrix
        FaultSpec {
            transient_rate: 0.10,
            seed: 7,
            ..FaultSpec::default()
        },
        FaultSpec {
            transient_rate: 0.06,
            stall_rate: 0.03,
            stall: Duration::from_millis(1),
            seed: 8,
            ..FaultSpec::default()
        },
    ];
    for (row, spec) in fault_specs.into_iter().enumerate() {
        let plan = spec.compile().unwrap();
        let store = Arc::new(SyntheticStore::with_faults(
            dataset.clone(),
            Duration::from_micros(10),
            0.0,
            plan,
        ));
        let ins = Instruments::enabled();
        let report = run_with(store, ecfg.clone(), ins.clone());
        assert!(!report.aborted, "matrix row {row}: faults must be healed");

        // Exact delivery vs the seeded schedule (per consumer, per
        // iteration) plus the cache-accounting invariant.
        check_engine_delivery(&dataset, &ecfg, &report, &ins)
            .unwrap_or_else(|d| panic!("matrix row {row}: engine vs schedule:\n{d}"));

        // And the cross-executor comparison: per-epoch multisets equal to
        // what the analytical executor delivered.
        let iters = schedule_spec(&dataset, &ecfg).iterations_per_epoch();
        let engine_epochs = engine_epoch_multisets(&report, &ecfg, iters);
        assert_eq!(
            engine_epochs, sim_obs.delivered,
            "matrix row {row}: engine delivered different epoch multisets than the simulator"
        );
    }
}

// ---------------------------------------------------------------------
// 2b. Elastic pool: role-flip decision sequences across all three
//     executors (ISSUE 5 acceptance: zero divergence over 5 seeds).
// ---------------------------------------------------------------------

/// The elastic controller's decisions are pure functions of the tick
/// index and the configured workload, so the live engine, the analytical
/// executor, and the conformance DES must produce *identical* role-flip
/// sequences — compared exactly, not within tolerance. A 1×2×4 simulated
/// cluster and a 2-consumer×4-batch engine see the same iteration
/// schedule (12 iterations/epoch over 96 samples), the same 8-worker
/// pool, and the same work-factor step at iteration 12.
#[test]
fn role_flip_sequences_agree_across_all_three_executors() {
    for seed in [3u64, 5, 7, 11, 13] {
        let dataset = Dataset::generate(
            "elastic-threeway",
            96,
            SizeDistribution::Constant { bytes: 16_384 },
            seed,
        );

        // Simulator side (also covers sim == DES via the differential
        // runner).
        let sim_cfg = ConfigBuilder::new()
            .nodes(1)
            .gpus_per_node(2)
            .batch_size(4)
            .pipeline_threads(8)
            .cache_bytes(dataset.total_bytes() / 3)
            .dataset(dataset.clone())
            .epochs(2)
            .seed(seed)
            .model(ModelProfile::new("elastic-threeway", 2e-4, 0.7, 10.0))
            .elastic(ElasticSimConfig {
                workers: 8,
                initial_preproc: 1,
                work_factor: 1,
                work_factor_step: Some((12, 8)),
                churn: false,
                frozen: false,
                estimate: lobster_core::WorkEstimate::Mean,
            })
            .build();
        run_differential(&sim_cfg, "lobster")
            .unwrap_or_else(|d| panic!("seed {seed}: sim vs DES diverged on elastic config:\n{d}"));

        let (_, sim_obs) =
            ClusterSim::new(sim_cfg, policy_by_name("lobster").unwrap()).run_observed();
        let sim_flips: Vec<RoleFlipObservable> = sim_obs
            .iterations
            .iter()
            .flat_map(|it| it.role_flips.iter().cloned())
            .collect();
        assert_eq!(sim_flips.len(), 24, "seed {seed}: one tick per iteration");

        // Live engine: same pool of 8, same initial split, same step.
        let ecfg = EngineConfig {
            consumers: 2,
            batch_size: 4,
            loader_threads: 7,
            preproc_threads: 1,
            epochs: 2,
            seed,
            work_factor: 1,
            work_factor_step: Some((12, 8)),
            // Exact f64 round-trip with the simulator's t_train_s = 2e-4.
            train: Duration::from_secs_f64(2e-4),
            elastic: true,
            ..EngineConfig::default()
        };
        let store = Arc::new(SyntheticStore::new(dataset, Duration::ZERO, 0.0));
        let report = run_with(store, ecfg, Instruments::enabled());
        let engine_flips: Vec<RoleFlipObservable> = report
            .role_flips
            .iter()
            .map(RoleFlipObservable::from_decision)
            .collect();

        assert_eq!(
            engine_flips, sim_flips,
            "seed {seed}: live engine role-flip sequence diverged from the simulators"
        );

        // And the step must actually have provoked a reallocation, or the
        // comparison is vacuous.
        assert!(
            sim_flips.iter().any(|f| !f.flipped.is_empty()),
            "seed {seed}: work-factor step never flipped a role"
        );
    }
}

// ---------------------------------------------------------------------
// 2c. Membership: crash/rejoin sequences across all three executors and
//     exactly-once delivery under node loss (ISSUE 7 acceptance).
// ---------------------------------------------------------------------

/// A whole-node crash (and rejoin) is a schedule-deterministic event: the
/// membership sequence is a pure function of the compiled crash plan, so
/// the analytical executor, the conformance DES, and the live engine must
/// produce *byte-identical* sequences — and the per-epoch delivered
/// multiset must equal the fault-free run's (exactly-once: losing a node
/// re-shards its slice onto survivors, it never drops or duplicates a
/// sample).
#[test]
fn membership_sequences_agree_across_all_three_executors() {
    for seed in [3u64, 5, 7, 11, 13] {
        // Simulator side (also covers sim == DES membership equality via
        // the differential runner's exact-compared observable).
        let cfg = crash_conformance_config(seed);
        let summary = run_differential(&cfg, "lobster")
            .unwrap_or_else(|d| panic!("seed {seed}: sim vs DES diverged on crash config:\n{d}"));
        let want: Vec<MembershipObservable> = cfg
            .crash_plan()
            .membership_timeline(summary.iterations as u64)
            .iter()
            .map(MembershipObservable::from_event)
            .collect();
        assert!(
            want.iter().any(|m| m.crashed) && want.iter().any(|m| !m.crashed),
            "seed {seed}: fixture must exercise both a crash and a rejoin"
        );

        let (_, sim_obs) =
            ClusterSim::new(cfg.clone(), policy_by_name("lobster").unwrap()).run_observed();
        assert_eq!(
            sim_obs.membership_sequence(),
            want,
            "seed {seed}: analytical executor's membership sequence diverged from the plan"
        );

        // Exactly-once: the crash run delivers the same per-epoch
        // multisets as a fault-free run of the same schedule.
        let mut no_crash = cfg.clone();
        no_crash.crashes.clear();
        let (_, base_obs) =
            ClusterSim::new(no_crash, policy_by_name("lobster").unwrap()).run_observed();
        assert_eq!(
            sim_obs.delivered, base_obs.delivered,
            "seed {seed}: node loss changed the delivered multiset (exactly-once broken)"
        );

        // Live engine: same W=6, |B|=4, dataset, seed — so the same
        // schedule — with the same crash plan applied at tick boundaries.
        let ecfg = EngineConfig {
            consumers: 6,
            batch_size: 4,
            loader_threads: 4,
            preproc_threads: 2,
            epochs: 2,
            seed,
            train: Duration::from_micros(100),
            crashes: cfg.crashes.clone(),
            peer_nodes: 3,
            ..EngineConfig::default()
        };
        let store = Arc::new(SyntheticStore::new(
            cfg.dataset.clone(),
            Duration::ZERO,
            0.0,
        ));
        let ins = Instruments::enabled();
        let report = run_with(store, ecfg.clone(), ins.clone());
        assert!(
            !report.aborted,
            "seed {seed}: engine aborted under crash schedule"
        );
        let engine_membership: Vec<MembershipObservable> = report
            .membership
            .iter()
            .map(MembershipObservable::from_event)
            .collect();
        assert_eq!(
            engine_membership, want,
            "seed {seed}: live engine membership sequence diverged from the simulators"
        );

        // The engine still delivers exactly the schedule — per consumer,
        // per iteration — and the same epoch multisets as the simulator.
        check_engine_delivery(&cfg.dataset, &ecfg, &report, &ins)
            .unwrap_or_else(|d| panic!("seed {seed}: engine vs schedule under crash:\n{d}"));
        let iters = schedule_spec(&cfg.dataset, &ecfg).iterations_per_epoch();
        assert_eq!(
            engine_epoch_multisets(&report, &ecfg, iters),
            sim_obs.delivered,
            "seed {seed}: engine epoch multisets diverged from the crash-schedule simulator run"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Mutation canaries: the harness must detect every armed flip.
// ---------------------------------------------------------------------

/// Every mutation in the registry is detected — three by the differential
/// runner, `horizon-off-by-one` by the model-based sweep checker (it is an
/// equivalent mutant under the production 2-epoch oracle window).
#[test]
fn every_mutation_canary_is_detected() {
    for m in Mutation::all() {
        let outcome = if m == Mutation::HorizonOffByOne {
            run_boundary_canary()
        } else if m == Mutation::NeverSteal || m == Mutation::DetectorThreshold {
            // NeverSteal freezes the elastic controller and
            // DetectorThreshold perturbs the anomaly bank: both are only
            // observable where a work-factor step forces the pool (and the
            // detectors watching it) to react.
            let cfg = elastic_conformance_config(11);
            run_canary(&cfg, "lobster", m)
        } else if m == Mutation::DropCrash {
            // Ignores the crash schedule: only observable on a config
            // that has one to ignore.
            let cfg = crash_conformance_config(11);
            run_canary(&cfg, "lobster", m)
        } else if m == Mutation::UniformCost {
            // Collapses per-sample cost to the mean: only observable on
            // a workload whose costs actually vary (DESIGN.md §15).
            let bimodal = lobster_repro::data::WorkloadSpec::default_for("bimodal", 192)
                .expect("bimodal is a known workload family");
            let cfg = workload_conformance_config(&bimodal, 11);
            run_canary(&cfg, "lobster", m)
        } else {
            let cfg = conformance_config(11);
            run_canary(&cfg, "lobster", m)
        };
        match outcome {
            CanaryOutcome::Detected(d) => {
                assert!(!d.observable.is_empty(), "{}: empty report", m.name());
            }
            CanaryOutcome::Undetected => {
                panic!(
                    "canary {} undetected: the harness has a blind spot",
                    m.name()
                )
            }
        }
    }
}

/// The unmutated DES must, of course, not trip the canary machinery.
#[test]
fn unmutated_des_reports_no_divergence() {
    let cfg = conformance_config(11);
    match run_canary(&cfg, "lobster", Mutation::None) {
        CanaryOutcome::Undetected => {}
        CanaryOutcome::Detected(d) => panic!("false positive without any mutation:\n{d}"),
    }
}

// ---------------------------------------------------------------------
// 4. Oracle edge cases (§4.4 boundary semantics).
// ---------------------------------------------------------------------

/// Reuse that crosses an epoch boundary: a sample consumed in the last
/// iteration of epoch 0 and reused in the first iteration of epoch 1 has
/// distance 1 and must be kept with the nearest-reuse priority key.
#[test]
fn epoch_boundary_reuse_distance_is_kept() {
    let spec = ScheduleSpec {
        nodes: 2,
        gpus_per_node: 1,
        batch_size: 1,
        dataset_len: 8,
        seed: 0,
    };
    let ids = |v: [u32; 8]| v.into_iter().map(SampleId).collect::<Vec<_>>();
    // Node 0 streams: epoch 0 [0, 1, 2, 3], epoch 1 [3, 0, 1, 2]: sample 3
    // is consumed at global iteration 3 and reused at global 4.
    let e0 = EpochSchedule::from_order(spec, 0, ids([0, 4, 1, 5, 2, 6, 3, 7]));
    let e1 = EpochSchedule::from_order(spec, 1, ids([3, 4, 0, 5, 1, 6, 2, 7]));
    let epochs = [&e0, &e1];
    let iters = e0.iterations();
    let node = 0;

    let mut oracle = NodeOracle::build(node, &epochs, 0);
    let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
    let mut directory = Directory::new(spec.nodes);
    for h in 0..iters {
        let batch: Vec<SampleId> = e0.node_iteration(h, node).to_vec();
        for &s in &batch {
            let key =
                ReuseAwareEvictor::priority_key(oracle.future_of(s).map(|f| f.next_iteration));
            if cache.insert(s, 1, key).inserted {
                directory.add(s, node);
            }
        }
        oracle.advance();
        check_sweep(
            &epochs, node, 0, &oracle, &cache, &directory, &batch, h, iters, h as u64,
        )
        .unwrap_or_else(|e| panic!("sweep disagreed at h={h}: {e}"));
        let mut victims = Vec::new();
        ReuseAwareEvictor.after_iteration_detailed(
            &mut cache,
            &mut directory,
            &oracle,
            node,
            &batch,
            h,
            iters,
            h as u64,
            &mut victims,
        );
        if h == iters - 1 {
            assert!(
                victims.is_empty(),
                "boundary reuse must not evict: {victims:?}"
            );
        }
    }
    // After the last epoch-0 sweep: sample 3's next use is global 4,
    // distance 1, key = MAX − 4.
    assert_eq!(
        cache.key_of(SampleId(3)),
        Some(u64::MAX - 4),
        "epoch-boundary reuse must carry the nearest-reuse priority key"
    );
    assert_eq!(naive_next_use(&epochs, node, SampleId(3), 4), Some(4));
}

/// The `2I − h` threshold *exactly at equality*: the strict `>` of §4.4
/// keeps a sample whose reuse distance equals the horizon. Unreachable
/// under the production 2-epoch oracle window (max distance is
/// `2I − h − 1`), hence the crafted 3-epoch fixture.
#[test]
fn horizon_threshold_equality_is_kept_and_beyond_is_evicted() {
    let fx = horizon_boundary_fixture();
    let iters = fx.epochs[0].iterations();

    // Variant of epoch 2 with sample 0 one iteration later (global 9):
    // distance 7 > horizon 6 ⇒ evicted by the reuse-distance rule.
    let ids = |v: [u32; 8]| v.into_iter().map(SampleId).collect::<Vec<_>>();
    let e2_late = EpochSchedule::from_order(fx.spec, 2, ids([1, 4, 0, 5, 2, 6, 3, 7]));

    for (next_global, expect_evicted) in [(8u64, false), (9u64, true)] {
        let epochs: Vec<&EpochSchedule> = if expect_evicted {
            vec![&fx.epochs[0], &fx.epochs[1], &e2_late]
        } else {
            fx.epochs.iter().collect()
        };
        let mut oracle = NodeOracle::build(fx.node, &epochs, 0);
        let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
        let mut directory = Directory::new(fx.spec.nodes);
        for h in 0..=fx.h {
            let batch: Vec<SampleId> = epochs[0].node_iteration(h, fx.node).to_vec();
            for &s in &batch {
                let key =
                    ReuseAwareEvictor::priority_key(oracle.future_of(s).map(|f| f.next_iteration));
                if cache.insert(s, 1, key).inserted {
                    directory.add(s, fx.node);
                }
            }
            oracle.advance();
            check_sweep(
                &epochs, fx.node, 0, &oracle, &cache, &directory, &batch, h, iters, h as u64,
            )
            .unwrap_or_else(|e| panic!("sweep disagreed at h={h}: {e}"));
            let mut victims = Vec::new();
            ReuseAwareEvictor.after_iteration_detailed(
                &mut cache,
                &mut directory,
                &oracle,
                fx.node,
                &batch,
                h,
                iters,
                h as u64,
                &mut victims,
            );
            if h == fx.h {
                if expect_evicted {
                    assert_eq!(
                        victims,
                        vec![(fx.sample, EvictCause::ReuseDistance)],
                        "distance {} > horizon must evict",
                        next_global - fx.h as u64
                    );
                    assert!(!cache.contains(fx.sample));
                } else {
                    assert!(victims.is_empty(), "equality must keep: {victims:?}");
                    assert_eq!(
                        cache.key_of(fx.sample),
                        Some(u64::MAX - next_global),
                        "kept sample carries the nearest-reuse key"
                    );
                }
            }
        }
    }
}

/// Single-sample dataset: the shuffle of one element is the identity, the
/// oracle sees it at every iteration, and it is never evicted (distance is
/// always 1).
#[test]
fn single_sample_dataset_oracle_and_sweep_degenerate_cleanly() {
    let spec = ScheduleSpec {
        nodes: 1,
        gpus_per_node: 1,
        batch_size: 1,
        dataset_len: 1,
        seed: 99,
    };
    let e0 = EpochSchedule::generate(spec, 0);
    let e1 = EpochSchedule::generate(spec, 1);
    assert_eq!(e0.all_accesses(), &[SampleId(0)]);
    assert_eq!(e1.all_accesses(), &[SampleId(0)]);

    let epochs = [&e0, &e1];
    let mut oracle = NodeOracle::build(0, &epochs, 0);
    let fut = oracle.future_of(SampleId(0)).expect("seen in window");
    assert_eq!(fut.next_iteration, 0);
    assert_eq!(fut.remaining_uses, 2);

    let mut cache = NodeCache::new(u64::MAX, EvictOrder::SmallestKeyFirst);
    let mut directory = Directory::new(1);
    cache.insert(SampleId(0), 1, 0);
    directory.add(SampleId(0), 0);
    oracle.advance();
    check_sweep(
        &epochs,
        0,
        0,
        &oracle,
        &cache,
        &directory,
        &[SampleId(0)],
        0,
        1,
        0,
    )
    .unwrap();
    let mut victims = Vec::new();
    ReuseAwareEvictor.after_iteration_detailed(
        &mut cache,
        &mut directory,
        &oracle,
        0,
        &[SampleId(0)],
        0,
        1,
        0,
        &mut victims,
    );
    assert!(
        victims.is_empty(),
        "the sole sample must survive: {victims:?}"
    );
    assert_eq!(cache.key_of(SampleId(0)), Some(u64::MAX - 1));
}
