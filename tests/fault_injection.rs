//! End-to-end fault-injection tests: the live engine must heal through
//! every injected fault class and still deliver the exact
//! schedule-determined integrity fingerprint — zero corrupted samples, no
//! hangs, no aborts (DESIGN.md §8).

use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::Instruments;
use lobster_repro::runtime::{expected_integrity, run, run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::{FaultSpec, SlowdownProfile};
use std::sync::Arc;
use std::time::Duration;

fn dataset(n: usize) -> Dataset {
    Dataset::generate(
        "it-faults",
        n,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        17,
    )
}

fn cfg() -> EngineConfig {
    EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed: 23,
        train: Duration::from_micros(200),
        adaptive: true,
        ..EngineConfig::default()
    }
}

/// The ISSUE's acceptance scenario: ≥5% transient errors, corruption, and
/// a mid-run slowdown. The adaptive engine must complete with the same
/// integrity fingerprint a fault-free run reports, and export non-zero
/// retry/corruption counters.
#[test]
fn engine_heals_transients_corruption_and_slowdown_with_exact_integrity() {
    let spec = FaultSpec {
        transient_rate: 0.08,
        corrupt_rate: 0.04,
        stall_rate: 0.02,
        stall: Duration::from_millis(1),
        slowdown: vec![SlowdownProfile::Step {
            at_s: 0.05,
            factor: 2.0,
        }],
        seed: 4242,
        ..FaultSpec::default()
    };
    let cfg = cfg();
    let ds = dataset(96);
    let expected = expected_integrity(&ds, &cfg);

    // Fault-free reference run delivers exactly the expected fingerprint.
    let clean = Arc::new(SyntheticStore::new(ds.clone(), Duration::ZERO, 0.0));
    let clean_report = run(clean, cfg.clone());
    assert_eq!(clean_report.integrity, expected);

    // Fault-injected run: same schedule, same fingerprint, visible healing.
    let plan = spec.compile().unwrap();
    let store = Arc::new(SyntheticStore::with_faults(
        ds,
        Duration::from_micros(20),
        0.0,
        plan,
    ));
    let ins = Instruments::enabled();
    let report = run_with(Arc::clone(&store), cfg, ins.clone());

    assert!(!report.aborted, "faults must be healed, not fatal");
    assert_eq!(report.delivered, clean_report.delivered);
    assert_eq!(
        report.integrity, expected,
        "zero corrupted samples may reach consumers"
    );
    assert!(report.retries > 0, "8% transients must surface as retries");
    assert!(
        report.corruptions_detected > 0,
        "4% corruption must be caught by checksum verification"
    );
    assert_eq!(
        report.corruptions_detected,
        store.injected().corruptions,
        "every injected corruption must be detected (none delivered)"
    );

    // Counters are exported through the metric registry...
    let snap = ins.metrics_snapshot();
    assert_eq!(snap.get("engine.retries").unwrap() as u64, report.retries);
    assert_eq!(
        snap.get("engine.corruptions_detected").unwrap() as u64,
        report.corruptions_detected
    );
    // ...and each fault/recovery left an instant in the trace.
    let trace = ins.chrome_trace_json().expect("enabled bundle has a trace");
    let doc: serde_json::Value = serde_json::from_str(&trace).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count() as u64
    };
    assert!(count("fault_transient") > 0, "transients traced");
    assert!(count("fault_corruption") > 0, "corruptions traced");
    assert!(count("fault_recovered") > 0, "recoveries traced");
}

/// Poisoned-worker containment: a worker that panics mid-fetch is caught,
/// counted, and its request re-executed; the run drains cleanly with full
/// integrity instead of deadlocking on the consumer barrier.
#[test]
fn poisoned_workers_are_contained_and_the_engine_drains() {
    let spec = FaultSpec {
        poison_rate: 0.06,
        seed: 99,
        ..FaultSpec::default()
    };
    let cfg = cfg();
    let ds = dataset(96);
    let expected = expected_integrity(&ds, &cfg);
    let store = Arc::new(SyntheticStore::with_faults(
        ds,
        Duration::ZERO,
        0.0,
        spec.compile().unwrap(),
    ));
    let t0 = std::time::Instant::now();
    let report = run(Arc::clone(&store), cfg);
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "containment must not hang: {:?}",
        t0.elapsed()
    );
    assert!(!report.aborted);
    assert_eq!(report.integrity, expected);
    assert_eq!(report.worker_panics, store.injected().poisons);
    assert!(report.worker_panics > 0, "6% poison over 96+ fetches");
}

/// Fault runs replay: the same spec + seed + schedule produce identical
/// delivered data and identical injected-fault counts.
#[test]
fn fault_injected_runs_are_replayable() {
    let spec = FaultSpec {
        transient_rate: 0.10,
        corrupt_rate: 0.05,
        seed: 7,
        ..FaultSpec::default()
    };
    let mk = || {
        Arc::new(SyntheticStore::with_faults(
            dataset(64),
            Duration::ZERO,
            0.0,
            spec.compile().unwrap(),
        ))
    };
    let r1 = run(mk(), cfg());
    let r2 = run(mk(), cfg());
    assert_eq!(r1.integrity, r2.integrity);
    assert_eq!(r1.delivered, r2.delivered);
}
