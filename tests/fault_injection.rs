//! End-to-end fault-injection tests: the live engine must heal through
//! every injected fault class and still deliver the exact
//! schedule-determined integrity fingerprint — zero corrupted samples, no
//! hangs, no aborts (DESIGN.md §8).

use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::Instruments;
use lobster_repro::runtime::{expected_integrity, run, run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::{FaultSpec, SlowdownProfile};
use std::sync::Arc;
use std::time::Duration;

fn dataset(n: usize) -> Dataset {
    Dataset::generate(
        "it-faults",
        n,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 8_000,
        },
        17,
    )
}

fn cfg() -> EngineConfig {
    EngineConfig {
        consumers: 2,
        batch_size: 4,
        loader_threads: 3,
        preproc_threads: 2,
        epochs: 2,
        seed: 23,
        train: Duration::from_micros(200),
        adaptive: true,
        ..EngineConfig::default()
    }
}

/// The ISSUE's acceptance scenario: ≥5% transient errors, corruption, and
/// a mid-run slowdown. The adaptive engine must complete with the same
/// integrity fingerprint a fault-free run reports, and export non-zero
/// retry/corruption counters.
#[test]
fn engine_heals_transients_corruption_and_slowdown_with_exact_integrity() {
    let spec = FaultSpec {
        transient_rate: 0.08,
        corrupt_rate: 0.04,
        stall_rate: 0.02,
        stall: Duration::from_millis(1),
        slowdown: vec![SlowdownProfile::Step {
            at_s: 0.05,
            factor: 2.0,
        }],
        seed: 4242,
        ..FaultSpec::default()
    };
    let cfg = cfg();
    let ds = dataset(96);
    let expected = expected_integrity(&ds, &cfg);

    // Fault-free reference run delivers exactly the expected fingerprint.
    let clean = Arc::new(SyntheticStore::new(ds.clone(), Duration::ZERO, 0.0));
    let clean_report = run(clean, cfg.clone());
    assert_eq!(clean_report.integrity, expected);

    // Fault-injected run: same schedule, same fingerprint, visible healing.
    let plan = spec.compile().unwrap();
    let store = Arc::new(SyntheticStore::with_faults(
        ds,
        Duration::from_micros(20),
        0.0,
        plan,
    ));
    let ins = Instruments::enabled();
    let report = run_with(Arc::clone(&store), cfg, ins.clone());

    assert!(!report.aborted, "faults must be healed, not fatal");
    assert_eq!(report.delivered, clean_report.delivered);
    assert_eq!(
        report.integrity, expected,
        "zero corrupted samples may reach consumers"
    );
    assert!(report.retries > 0, "8% transients must surface as retries");
    assert!(
        report.corruptions_detected > 0,
        "4% corruption must be caught by checksum verification"
    );
    assert_eq!(
        report.corruptions_detected,
        store.injected().corruptions,
        "every injected corruption must be detected (none delivered)"
    );

    // Counters are exported through the metric registry...
    let snap = ins.metrics_snapshot();
    assert_eq!(snap.get("engine.retries").unwrap() as u64, report.retries);
    assert_eq!(
        snap.get("engine.corruptions_detected").unwrap() as u64,
        report.corruptions_detected
    );
    // ...and each fault/recovery left an instant in the trace.
    let trace = ins.chrome_trace_json().expect("enabled bundle has a trace");
    let doc: serde_json::Value = serde_json::from_str(&trace).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count() as u64
    };
    assert!(count("fault_transient") > 0, "transients traced");
    assert!(count("fault_corruption") > 0, "corruptions traced");
    assert!(count("fault_recovered") > 0, "recoveries traced");
}

/// Poisoned-worker containment: a worker that panics mid-fetch is caught,
/// counted, and its request re-executed; the run drains cleanly with full
/// integrity instead of deadlocking on the consumer barrier.
#[test]
fn poisoned_workers_are_contained_and_the_engine_drains() {
    let spec = FaultSpec {
        poison_rate: 0.06,
        seed: 99,
        ..FaultSpec::default()
    };
    let cfg = cfg();
    let ds = dataset(96);
    let expected = expected_integrity(&ds, &cfg);
    let store = Arc::new(SyntheticStore::with_faults(
        ds,
        Duration::ZERO,
        0.0,
        spec.compile().unwrap(),
    ));
    let t0 = std::time::Instant::now();
    let report = run(Arc::clone(&store), cfg);
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "containment must not hang: {:?}",
        t0.elapsed()
    );
    assert!(!report.aborted);
    assert_eq!(report.integrity, expected);
    assert_eq!(report.worker_panics, store.injected().poisons);
    assert!(report.worker_panics > 0, "6% poison over 96+ fetches");
}

/// Fault runs replay: the same spec + seed + schedule produce identical
/// delivered data and identical injected-fault counts.
#[test]
fn fault_injected_runs_are_replayable() {
    let spec = FaultSpec {
        transient_rate: 0.10,
        corrupt_rate: 0.05,
        seed: 7,
        ..FaultSpec::default()
    };
    let mk = || {
        Arc::new(SyntheticStore::with_faults(
            dataset(64),
            Duration::ZERO,
            0.0,
            spec.compile().unwrap(),
        ))
    };
    let r1 = run(mk(), cfg());
    let r2 = run(mk(), cfg());
    assert_eq!(r1.integrity, r2.integrity);
    assert_eq!(r1.delivered, r2.delivered);
}

// ---------------------------------------------------------------------
// Whole-node crash and rejoin (ISSUE 7): membership is tick-deterministic
// and never changes what the pipeline delivers.
// ---------------------------------------------------------------------

use lobster_repro::core::policy_by_name;
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};
use lobster_repro::storage::CrashSpec;
use proptest::prelude::*;

/// A crash window in the live engine routes the dead peer's fetches
/// through the immediate-PFS failover; the delivered bytes — and therefore
/// the end-to-end integrity fingerprint — are untouched, and the applied
/// membership sequence is exactly the schedule's.
#[test]
fn engine_survives_node_crash_and_rejoin_with_exact_integrity() {
    let ds = dataset(96);
    let ecfg = EngineConfig {
        crashes: vec![CrashSpec {
            node: 1,
            tick: 2,
            rejoin: Some(5),
        }],
        peer_nodes: 3,
        ..cfg()
    };
    let expected = expected_integrity(&ds, &ecfg);
    let store = Arc::new(SyntheticStore::new(ds, Duration::ZERO, 0.0));
    let report = run_with(store, ecfg, Instruments::enabled());
    assert!(!report.aborted, "a scheduled crash must be healed");
    assert_eq!(
        report.integrity, expected,
        "crash window corrupted delivery"
    );
    assert_eq!(
        report
            .membership
            .iter()
            .map(|e| (e.tick, e.node))
            .collect::<Vec<_>>(),
        vec![(2, 1), (5, 1)],
        "crash and rejoin applied at their scheduled ticks"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any single crash (with or without a rejoin) anywhere in the run:
    /// the per-epoch delivered multisets are byte-identical to the
    /// fault-free run of the same schedule — exactly-once under node loss,
    /// for arbitrary crash placement.
    #[test]
    fn any_crash_schedule_preserves_delivery(
        seed in 0u64..10_000,
        node in 0u32..3,
        tick in 1u64..15,
        rejoin_gap in 0u64..8,
    ) {
        let dataset = Dataset::generate(
            "prop-crash",
            96,
            SizeDistribution::Uniform { lo: 2_000, hi: 16_000 },
            seed,
        );
        // 96 / (3 nodes × 2 GPUs × 2) = 8 iterations/epoch, 16 total.
        let build = |with_crash: bool| {
            let mut b = ConfigBuilder::new()
                .nodes(3)
                .gpus_per_node(2)
                .batch_size(2)
                .pipeline_threads(8)
                .cache_bytes(dataset.total_bytes() / 3)
                .dataset(dataset.clone())
                .epochs(2)
                .seed(seed);
            if with_crash {
                // gap 0 = the node never comes back.
                let rejoin = (rejoin_gap > 0).then(|| tick + rejoin_gap);
                b = b.try_crash_node(node, tick, rejoin).unwrap();
            }
            b.build()
        };
        let (_, crashed) =
            ClusterSim::new(build(true), policy_by_name("lobster").unwrap()).run_observed();
        let (_, clean) =
            ClusterSim::new(build(false), policy_by_name("lobster").unwrap()).run_observed();
        prop_assert_eq!(
            crashed.delivered, clean.delivered,
            "node {} crash at tick {} (rejoin gap {}) changed delivery",
            node, tick, rejoin_gap
        );
    }

    /// The compiled membership machinery is deterministic and
    /// self-consistent: two compiles of the same spec agree everywhere,
    /// the tick-by-tick event replay equals the batch timeline, and the
    /// down-mask agrees with the per-node predicate at every tick.
    #[test]
    fn crash_plan_is_deterministic_and_self_consistent(
        seed in any::<u64>(),
        raw in proptest::collection::vec((0u32..6, 1u64..40, 0u64..20), 1..4),
    ) {
        let crashes: Vec<CrashSpec> = raw
            .iter()
            .map(|&(node, tick, gap)| CrashSpec {
                node,
                tick,
                rejoin: (gap > 0).then(|| tick + gap),
            })
            .collect();
        let spec = FaultSpec { crashes, seed, ..FaultSpec::default() };
        // Overlapping windows for one node are rejected by validation;
        // skip those draws rather than shrinking the generator around them.
        let compiled = spec.compile();
        prop_assume!(compiled.is_ok());
        let a = compiled.unwrap();
        let b = spec.compile().unwrap();
        prop_assert_eq!(a.membership_timeline(64), b.membership_timeline(64));
        let mut replay = Vec::new();
        for t in 0..64u64 {
            prop_assert_eq!(a.down_mask_at(t), b.down_mask_at(t));
            for n in 0..6u32 {
                prop_assert_eq!(
                    a.node_down(n, t),
                    a.down_mask_at(t) & (1 << n) != 0,
                    "mask and predicate disagree at tick {} node {}", t, n
                );
            }
            replay.extend(a.membership_events_at(t));
        }
        prop_assert_eq!(replay, a.membership_timeline(64));
    }
}
