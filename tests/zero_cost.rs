//! The disabled observability path must be free: no allocation, no work.
//!
//! `Instruments::disabled()` is what every un-instrumented run carries
//! through the engine's per-batch hot path, so "one branch per site" is a
//! hard contract, not an aspiration. This test swaps in a counting
//! allocator and drives the exact site shapes the engine uses — the
//! fetch-span closure, pre-fetched counter/gauge handles, `now_us`, and
//! `observe_iteration` — asserting the fully-disabled path performs zero
//! heap allocations. The companion micro-benchmark is
//! `crates/bench/benches/observability.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lobster_repro::metrics::{GpuIterSample, Instruments, StageSample, TraceEvent};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_fetch_span_path_allocates_nothing() {
    let ins = Instruments::disabled();
    // Handles are fetched once at setup time, exactly as the engine does;
    // disabled handles are free-floating cells.
    let fetches = ins.counter("engine.fetches");
    let depth = ins.gauge("engine.queue_depth");

    // Warm up any lazy runtime state outside the measured window.
    fetches.inc();
    ins.trace(|| TraceEvent::span("fetch", "io", 0, 1));

    let before = allocations();
    for i in 0..10_000u64 {
        let ts = ins.now_us();
        // The closure builds a span with args — allocation-bearing work the
        // disabled bundle must never execute.
        ins.trace(|| {
            TraceEvent::span("fetch", "io", ts, 10)
                .pid(0)
                .tid(1)
                .arg_u("bytes", i)
                .arg_s("tier", "cache")
        });
        fetches.inc();
        depth.add(1);
    }
    assert_eq!(
        allocations() - before,
        0,
        "disabled fetch-span path must not allocate"
    );
}

#[test]
fn disabled_observe_iteration_allocates_nothing() {
    let ins = Instruments::disabled();
    let before = allocations();
    for iter in 0..1_000u64 {
        let out = ins.observe_iteration(iter, 0, || {
            // Building the sample vector allocates; disabled bundles must
            // not run this closure.
            vec![GpuIterSample {
                node: 0,
                gpu: 0,
                iter_s: 0.1,
                stages: StageSample::default(),
            }]
        });
        assert!(out.is_none());
    }
    assert_eq!(
        allocations() - before,
        0,
        "disabled observe_iteration must not allocate"
    );
}

#[test]
fn steady_state_elastic_tick_allocates_nothing() {
    use lobster_repro::core::elastic::{ElasticController, ElasticObservation, ElasticParams};

    // The elastic controller sits on the engine's per-iteration tick path
    // (consumer 0, between the barrier and the next batch), so its
    // steady state rides the same contract as the disabled instruments:
    // once the regression fit and the loader plan are memoized, a tick
    // that changes nothing must not touch the heap.
    let params = ElasticParams::for_pool(8, 2);
    let mut ctl = ElasticController::new(params, 2);

    // Warm-up: first tick builds the points, the fit, and the loader
    // plan; a second tick proves the memo keys hold before measuring.
    for t in 0..2u64 {
        ctl.tick(&ElasticObservation::for_iteration(t, 16_384.0, 1, 8, 2e-4));
    }

    let before = allocations();
    for t in 2..2_002u64 {
        let obs = ElasticObservation::for_iteration(t, 16_384.0, 1, 8, 2e-4);
        let d = ctl.tick(&obs);
        assert!(d.flipped.is_empty(), "steady state must not flip");
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state elastic tick must not allocate"
    );
}

#[test]
fn enabled_bundle_does_record_as_a_control() {
    // Sanity check that the harness above would catch regressions: the
    // enabled path performs the same operations and does allocate.
    let ins = Instruments::enabled();
    let fetches = ins.counter("engine.fetches");
    let before = allocations();
    for _ in 0..16 {
        let ts = ins.now_us();
        ins.trace(|| TraceEvent::span("fetch", "io", ts, 10).arg_s("tier", "cache"));
        fetches.inc();
    }
    assert!(
        allocations() > before,
        "enabled path records (and allocates)"
    );
    assert_eq!(ins.metrics_snapshot().get("engine.fetches"), Some(16));
}
