//! Cross-crate determinism: the whole stack — dataset generation, shuffle,
//! oracle, caches, policies, executor — must be a pure function of the seed.

use lobster_repro::core::{policy_by_name, LoaderPolicy};
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder, ExperimentConfig, RunReport};

fn config(seed: u64) -> ExperimentConfig {
    let dataset = Dataset::generate(
        "det",
        4096,
        SizeDistribution::LogNormal {
            mu: (30_000f64).ln(),
            sigma: 0.8,
            min: 1_000,
            max: 500_000,
        },
        seed,
    );
    let cache = dataset.total_bytes() / 5;
    ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(16)
        .cache_bytes(cache)
        .epochs(3)
        .seed(seed)
        .dataset(dataset)
        .build()
}

fn run(seed: u64, policy: Box<dyn LoaderPolicy>) -> RunReport {
    ClusterSim::new(config(seed), policy).run().0
}

#[test]
fn identical_seeds_produce_identical_reports() {
    for name in [
        "pytorch",
        "dali",
        "nopfs",
        "lobster",
        "lobster_th",
        "lobster_evict",
    ] {
        let a = run(7, policy_by_name(name).unwrap());
        let b = run(7, policy_by_name(name).unwrap());
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "policy {name} must be bit-for-bit deterministic");
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let a = run(1, policy_by_name("lobster").unwrap());
    let b = run(2, policy_by_name("lobster").unwrap());
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "seed must actually influence the run"
    );
}

#[test]
fn dataset_generation_is_seed_stable_across_calls() {
    use lobster_repro::data::imagenet_1k;
    let a = imagenet_1k(512, 42);
    let b = imagenet_1k(512, 42);
    assert_eq!(a.total_bytes(), b.total_bytes());
    assert_eq!(a.len(), b.len());
}

#[test]
fn schedule_and_oracle_agree_across_crate_boundaries() {
    use lobster_repro::data::{EpochSchedule, NodeOracle, ScheduleSpec};
    let spec = ScheduleSpec {
        nodes: 2,
        gpus_per_node: 2,
        batch_size: 8,
        dataset_len: 512,
        seed: 3,
    };
    let e0 = EpochSchedule::generate(spec, 0);
    let e1 = EpochSchedule::generate(spec, 1);
    let mut oracle = NodeOracle::build(0, &[&e0, &e1], 0);
    // Walk epoch 0 and verify the oracle's "upcoming" view equals the
    // schedule at every step.
    for h in 0..e0.iterations() {
        assert_eq!(oracle.upcoming_iteration(0), e0.node_iteration(h, 0));
        oracle.advance();
    }
    assert_eq!(oracle.upcoming_iteration(0), e1.node_iteration(0, 0));
}
