//! Integration tests of the observability layer: the Chrome trace-event
//! exporter's JSON shape (golden-file style — written to disk, parsed back
//! with serde_json), the metric registry's cross-thread behaviour, and the
//! simulator's event stream.

use lobster_repro::core::LobsterPolicy;
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::{Instruments, MetricRegistry, TraceBuffer, TraceEvent};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};

/// The exporter's output must be a valid Chrome trace-event document:
/// `{"traceEvents": [...]}` where every event has `ph`/`ts`/`pid`/`tid`,
/// spans (`ph == "X"`) carry `dur`, and args survive the round trip.
#[test]
fn chrome_trace_export_golden_file() {
    let buf = TraceBuffer::new();
    buf.push(
        TraceEvent::span("fetch", "io", 1_000, 250)
            .pid(2)
            .tid(5)
            .arg_s("tier", "store")
            .arg_u("bytes", 16_384)
            .arg_f("cost_s", 0.00025),
    );
    buf.push(
        TraceEvent::instant("queue_enqueue", "queue", 1_100)
            .tid(1)
            .arg_u("depth", 7),
    );

    let dir = std::env::temp_dir().join("lobster-trace-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    std::fs::write(&path, buf.chrome_trace_json()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), 2);

    let span = &events[0];
    assert_eq!(span["name"].as_str(), Some("fetch"));
    assert_eq!(span["cat"].as_str(), Some("io"));
    assert_eq!(span["ph"].as_str(), Some("X"));
    assert_eq!(span["ts"].as_u64(), Some(1_000));
    assert_eq!(span["dur"].as_u64(), Some(250));
    assert_eq!(span["pid"].as_u64(), Some(2));
    assert_eq!(span["tid"].as_u64(), Some(5));
    assert_eq!(span["args"]["tier"].as_str(), Some("store"));
    assert_eq!(span["args"]["bytes"].as_u64(), Some(16_384));
    assert!(span["args"]["cost_s"].as_f64().unwrap() > 0.0);

    let instant = &events[1];
    assert_eq!(instant["ph"].as_str(), Some("i"));
    assert_eq!(instant["ts"].as_u64(), Some(1_100));
    assert!(instant["pid"].as_u64().is_some() && instant["tid"].as_u64().is_some());
    assert_eq!(instant["args"]["depth"].as_u64(), Some(7));

    // Every event in any export satisfies the required-field contract.
    for e in events {
        for field in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(!e[field].is_null(), "event missing {field}: {e:?}");
        }
    }
}

#[test]
fn registry_snapshot_is_consistent_under_concurrent_writers() {
    let reg = MetricRegistry::new();
    let a = reg.counter("t.a");
    let b = reg.counter("t.b");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let a = a.clone();
            let b = b.clone();
            s.spawn(move || {
                // Maintain a+b invariant pairwise so any consistent
                // snapshot shows equal counts once writers finish.
                for _ in 0..5_000 {
                    a.inc();
                    b.inc();
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.get("t.a"), Some(20_000));
    assert_eq!(snap.get("t.b"), Some(20_000));
}

/// An instrumented simulator run produces a coherent event stream: fetch
/// spans and queue/cache instants on the simulated timeline, and `sim.*`
/// counters agreeing with the run report.
#[test]
fn simulator_trace_matches_report() {
    let dataset = Dataset::generate(
        "obs-sim",
        2_048,
        SizeDistribution::Constant { bytes: 100_000 },
        17,
    );
    let cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(16)
        .cache_bytes(dataset.total_bytes() / 4)
        .epochs(2)
        .dataset(dataset)
        .build();
    let ins = Instruments::enabled();
    let (report, _) = ClusterSim::new(cfg, Box::new(LobsterPolicy::full()))
        .with_instruments(ins.clone())
        .run();

    let snap = ins.metrics_snapshot();
    let local: u64 = report.epochs.iter().map(|e| e.local_hits).sum();
    let misses: u64 = report.epochs.iter().map(|e| e.misses).sum();
    assert_eq!(snap.get("sim.local_hits").unwrap() as u64, local);
    assert_eq!(snap.get("sim.misses").unwrap() as u64, misses);

    let doc: serde_json::Value = serde_json::from_str(&ins.chrome_trace_json().unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count()
    };
    assert!(count("fetch") > 0, "no fetch spans");
    assert!(count("queue_depth") > 0, "no queue instants");
    assert!(count("cache") > 0, "no cache instants");
    assert!(count("train") > 0, "no train spans");
    // Timestamps are simulated time: monotone-sorted export, finite values.
    let ts: Vec<u64> = events.iter().map(|e| e["ts"].as_u64().unwrap()).collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "snapshot must be time-sorted"
    );
}

/// Deterministic straggler attribution, end to end: a simulated cluster
/// with one node slowed 4x on I/O must be blamed — online and offline —
/// on the right GPU *and* the right storage tier.
///
/// Golden expectations (fixed seed, fixed config): the straggler is
/// node 1 / gpu 0, the dominant blame tier is the PFS, and the doctor's
/// offline reconstruction of the exported trace reaches the same verdict
/// as the online analyzer.
#[test]
fn forced_slow_node_is_attributed_to_gpu_and_tier() {
    let dataset = Dataset::generate(
        "obs-straggler",
        4_096,
        SizeDistribution::Constant { bytes: 1_000_000 },
        7,
    );
    let cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(1)
        .batch_size(16)
        .cache_bytes(dataset.total_bytes() / 16)
        .pipeline_threads(6)
        .epochs(4)
        .slow_node(1, 4.0)
        .dataset(dataset)
        .build();
    let ins = Instruments::enabled();
    let (_report, _) = ClusterSim::new(cfg, Box::new(LobsterPolicy::full()))
        .with_instruments(ins.clone())
        .run();

    // Online: the analyzer names the injected straggler and its tier.
    let online = ins.analysis_report().expect("enabled");
    assert_eq!(online.top_straggler(), Some((1, 0)), "injected straggler");
    assert!(!online.episodes.is_empty(), "episodes flagged");
    for ep in &online.episodes {
        assert_eq!((ep.node, ep.gpu), (1, 0));
        assert_eq!(ep.dominant.tier(), Some("pfs"), "dominant tier per episode");
    }
    let straggler_blame = online
        .per_gpu
        .iter()
        .find(|g| (g.node, g.gpu) == (1, 0))
        .unwrap();
    assert_eq!(
        straggler_blame
            .stages
            .dominant_pipeline_category()
            .unwrap()
            .tier(),
        Some("pfs"),
        "the slow node's time goes to PFS fetches"
    );
    assert!(straggler_blame.slowest_count * 2 > online.iterations);

    // Mirrored gauges: straggler_gpu encodes (node << 16) | gpu.
    let snap = ins.metrics_snapshot();
    assert_eq!(snap.get("analysis.straggler_gpu"), Some(1 << 16));
    assert!(snap.get("analysis.straggler_episodes").unwrap() >= 1);
    assert!(snap.get("analysis.gap_us").unwrap() > 0);

    // Offline: the doctor reads the exported trace + sidecars and reaches
    // the same verdict.
    use lobster_repro::bench::doctor::{diagnose, render, Diagnosis};
    let trace = ins.chrome_trace_json().unwrap();
    assert_eq!(ins.trace_dropped(), 0, "run must fit the trace buffer");
    let d = diagnose(&trace, Some(&snap), &ins.decisions()).unwrap();
    assert!(!d.is_empty());
    let call = d.straggler.as_ref().expect("doctor names a straggler");
    assert_eq!((call.node, call.gpu), (1, 0));
    assert_eq!(d.top_bottleneck.as_deref(), Some("pfs_fetch"));
    assert!(!d.solver.is_empty(), "decision log joined");
    assert!(d.tiers.iter().any(|t| t.tier == "pfs" && t.count > 0));
    let text = render(&d);
    assert!(text.contains("straggler: node 1 gpu 0"));
    assert!(text.contains("pfs_fetch"));

    // The doctor's machine-readable output round-trips losslessly.
    let json = serde_json::to_string_pretty(&d).unwrap();
    let back: Diagnosis = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    assert_eq!(back.straggler.map(|s| (s.node, s.gpu)), Some((1, 0)));
}

/// The acceptance criterion for the live gap gauge: in an adaptive run
/// whose warm-up is heavily imbalanced, the Eq.-3 gap visibly shrinks
/// after Algorithm-1 decisions land, and the decisions are joined with
/// the gap on both sides.
#[test]
fn gap_shrinks_after_algorithm1_decisions() {
    let dataset = Dataset::generate(
        "obs-gap-trend",
        4_096,
        SizeDistribution::Constant { bytes: 1_000_000 },
        7,
    );
    let cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(16)
        .cache_bytes(dataset.total_bytes() / 16)
        .pipeline_threads(6)
        .epochs(4)
        .slow_node(1, 4.0)
        .dataset(dataset)
        .build();
    let ins = Instruments::enabled();
    let (_report, _) = ClusterSim::new(cfg, Box::new(LobsterPolicy::full()))
        .with_instruments(ins.clone())
        .run();

    let report = ins.analysis_report().expect("enabled");
    assert!(!report.solver.is_empty(), "Algorithm 1 made decisions");
    assert!(
        report.solver.iter().any(|s| s.gap_after_s.is_some()),
        "decisions joined with the following iteration's gap"
    );
    assert!(
        report.ewma_gap_s < report.first_gap_s / 2.0,
        "gap must shrink: first {:.3}s, final EWMA {:.3}s",
        report.first_gap_s,
        report.ewma_gap_s
    );

    // The same trend is visible to a live observer through the gauges.
    let snap = ins.metrics_snapshot();
    let ewma_us = snap.get("analysis.ewma_gap_us").unwrap();
    assert!((ewma_us as f64 - report.ewma_gap_s * 1e6).abs() < 1.0);
    assert!((ewma_us as f64) < report.first_gap_s * 1e6 / 2.0);
}
