//! Integration tests of the observability layer: the Chrome trace-event
//! exporter's JSON shape (golden-file style — written to disk, parsed back
//! with serde_json), the metric registry's cross-thread behaviour, and the
//! simulator's event stream.

use lobster_repro::core::LobsterPolicy;
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::{Instruments, MetricRegistry, TraceBuffer, TraceEvent};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder};

/// The exporter's output must be a valid Chrome trace-event document:
/// `{"traceEvents": [...]}` where every event has `ph`/`ts`/`pid`/`tid`,
/// spans (`ph == "X"`) carry `dur`, and args survive the round trip.
#[test]
fn chrome_trace_export_golden_file() {
    let buf = TraceBuffer::new();
    buf.push(
        TraceEvent::span("fetch", "io", 1_000, 250)
            .pid(2)
            .tid(5)
            .arg_s("tier", "store")
            .arg_u("bytes", 16_384)
            .arg_f("cost_s", 0.00025),
    );
    buf.push(
        TraceEvent::instant("queue_enqueue", "queue", 1_100)
            .tid(1)
            .arg_u("depth", 7),
    );

    let dir = std::env::temp_dir().join("lobster-trace-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    std::fs::write(&path, buf.chrome_trace_json()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), 2);

    let span = &events[0];
    assert_eq!(span["name"].as_str(), Some("fetch"));
    assert_eq!(span["cat"].as_str(), Some("io"));
    assert_eq!(span["ph"].as_str(), Some("X"));
    assert_eq!(span["ts"].as_u64(), Some(1_000));
    assert_eq!(span["dur"].as_u64(), Some(250));
    assert_eq!(span["pid"].as_u64(), Some(2));
    assert_eq!(span["tid"].as_u64(), Some(5));
    assert_eq!(span["args"]["tier"].as_str(), Some("store"));
    assert_eq!(span["args"]["bytes"].as_u64(), Some(16_384));
    assert!(span["args"]["cost_s"].as_f64().unwrap() > 0.0);

    let instant = &events[1];
    assert_eq!(instant["ph"].as_str(), Some("i"));
    assert_eq!(instant["ts"].as_u64(), Some(1_100));
    assert!(instant["pid"].as_u64().is_some() && instant["tid"].as_u64().is_some());
    assert_eq!(instant["args"]["depth"].as_u64(), Some(7));

    // Every event in any export satisfies the required-field contract.
    for e in events {
        for field in ["name", "cat", "ph", "ts", "pid", "tid"] {
            assert!(!e[field].is_null(), "event missing {field}: {e:?}");
        }
    }
}

#[test]
fn registry_snapshot_is_consistent_under_concurrent_writers() {
    let reg = MetricRegistry::new();
    let a = reg.counter("t.a");
    let b = reg.counter("t.b");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let a = a.clone();
            let b = b.clone();
            s.spawn(move || {
                // Maintain a+b invariant pairwise so any consistent
                // snapshot shows equal counts once writers finish.
                for _ in 0..5_000 {
                    a.inc();
                    b.inc();
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.get("t.a"), Some(20_000));
    assert_eq!(snap.get("t.b"), Some(20_000));
}

/// An instrumented simulator run produces a coherent event stream: fetch
/// spans and queue/cache instants on the simulated timeline, and `sim.*`
/// counters agreeing with the run report.
#[test]
fn simulator_trace_matches_report() {
    let dataset = Dataset::generate(
        "obs-sim",
        2_048,
        SizeDistribution::Constant { bytes: 100_000 },
        17,
    );
    let cfg = ConfigBuilder::new()
        .nodes(2)
        .gpus_per_node(2)
        .batch_size(16)
        .cache_bytes(dataset.total_bytes() / 4)
        .epochs(2)
        .dataset(dataset)
        .build();
    let ins = Instruments::enabled();
    let (report, _) = ClusterSim::new(cfg, Box::new(LobsterPolicy::full()))
        .with_instruments(ins.clone())
        .run();

    let snap = ins.metrics_snapshot();
    let local: u64 = report.epochs.iter().map(|e| e.local_hits).sum();
    let misses: u64 = report.epochs.iter().map(|e| e.misses).sum();
    assert_eq!(snap.get("sim.local_hits").unwrap() as u64, local);
    assert_eq!(snap.get("sim.misses").unwrap() as u64, misses);

    let doc: serde_json::Value = serde_json::from_str(&ins.chrome_trace_json().unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["name"].as_str() == Some(name))
            .count()
    };
    assert!(count("fetch") > 0, "no fetch spans");
    assert!(count("queue_depth") > 0, "no queue instants");
    assert!(count("cache") > 0, "no cache instants");
    assert!(count("train") > 0, "no train spans");
    // Timestamps are simulated time: monotone-sorted export, finite values.
    let ts: Vec<u64> = events.iter().map(|e| e["ts"].as_u64().unwrap()).collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "snapshot must be time-sorted"
    );
}
