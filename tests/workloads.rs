//! Workload diversity suite (DESIGN.md §15): the five seeded workload
//! families — Zipf-skewed popularity, heavy-tailed sizes, bimodal
//! preprocessing cost, a growing dataset, and heterogeneous compute
//! drift — exercised end to end.
//!
//! Three layers of evidence:
//!
//! 1. **Spec semantics** — the `--workload` grammar round-trips, every
//!    generator is a pure function of `(seed, spec)`, and each family
//!    actually produces the distribution shape it advertises.
//! 2. **Differential + live delivery** — every family runs through the
//!    analytical-vs-DES harness and the live engine's delivery check at
//!    integration-test scale (the CI `workload_smoke` binary covers the
//!    full 5-seed matrix).
//! 3. **The estimate showdown** — on the bimodal family the mean-based
//!    work estimate the paper assumes provisions too few preprocessing
//!    threads; the p90 quantile estimate must beat it (the `ext_workloads`
//!    binary pins the ≥10% headline; here we pin the direction).

use lobster_repro::conformance::{
    check_engine_delivery, run_differential, workload_conformance_matrix,
};
use lobster_repro::core::WorkEstimate;
use lobster_repro::data::{SampleId, WorkloadFamily, WorkloadSpec};
use lobster_repro::metrics::Instruments;
use lobster_repro::runtime::{run_with, EngineConfig, SyntheticStore};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// 1. Spec semantics.
// ---------------------------------------------------------------------

#[test]
fn workload_grammar_round_trips_every_family() {
    for text in [
        "zipf",
        "zipf:s=1.4,samples=256",
        "heavy-tail:median=4096,sigma=1.8",
        "bimodal:slow-frac=0.25,slow-cost=32",
        "growing:initial=0.4,growth=0.2",
        "drift:peak=3.0",
    ] {
        let spec = WorkloadSpec::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        // The label is itself valid grammar and parses back to the same
        // spec — what `--workload <label>` from a report must reproduce.
        let label = spec.label();
        let back = WorkloadSpec::parse(&label).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(back, spec, "label {label:?} must round-trip");
    }
}

#[test]
fn workload_grammar_rejects_nonsense() {
    assert!(WorkloadSpec::parse("imagenet").is_err(), "unknown family");
    assert!(WorkloadSpec::parse("zipf:s").is_err(), "not k=v");
    assert!(WorkloadSpec::parse("zipf:s=abc").is_err(), "not a number");
    assert!(
        WorkloadSpec::parse("bimodal:peak=2.0").is_err(),
        "parameter from the wrong family"
    );
}

#[test]
fn generators_are_pure_functions_of_seed_and_spec() {
    for w in WorkloadSpec::all_families(128) {
        let a = w.dataset(7);
        let b = w.dataset(7);
        let fingerprint = |d: &lobster_repro::data::Dataset| -> (u64, u64) {
            (d.total_bytes(), d.total_work_bytes())
        };
        assert_eq!(fingerprint(&a), fingerprint(&b), "{}: same seed", w.label());
        for i in 0..a.len() as u32 {
            assert_eq!(a.size_of(SampleId(i)), b.size_of(SampleId(i)));
            assert_eq!(a.cost_of(SampleId(i)), b.cost_of(SampleId(i)));
        }
        let c = w.dataset(8);
        // Bimodal/drift keep constant sizes; heavy-tail and zipf must
        // change with the seed somewhere in sizes or costs.
        if matches!(w.family, WorkloadFamily::HeavyTail { .. }) {
            assert_ne!(
                fingerprint(&a),
                fingerprint(&c),
                "{}: a different seed must draw different sizes",
                w.label()
            );
        }
    }
}

#[test]
fn bimodal_costs_match_the_advertised_mix() {
    let w = WorkloadSpec::parse("bimodal:slow-frac=0.25,slow-cost=8,samples=1024").unwrap();
    let d = w.dataset(3);
    let slow = (0..1024u32)
        .filter(|&i| d.cost_of(SampleId(i)) == 8)
        .count();
    let fast = (0..1024u32)
        .filter(|&i| d.cost_of(SampleId(i)) == 1)
        .count();
    assert_eq!(slow + fast, 1024, "costs are exactly the two modes");
    let frac = slow as f64 / 1024.0;
    assert!(
        (frac - 0.25).abs() < 0.05,
        "slow fraction {frac} must track slow-frac=0.25"
    );
    // p90 work sits at the slow mode, the mean far below it — the gap the
    // estimate showdown exploits.
    assert!(d.work_quantile_bytes(900) > 2.0 * d.mean_work_bytes());
}

#[test]
fn drift_ramp_spans_nominal_to_peak() {
    let w = WorkloadSpec::parse("drift:peak=2.0").unwrap();
    let ramp = w.drift_ramp(4);
    assert_eq!(ramp.len(), 3, "node 0 stays nominal");
    for &(node, from, to) in &ramp {
        assert!((1..4).contains(&node));
        assert_eq!(from, 1.0);
        assert!(to > 1.0 && to <= 3.0, "node {node} ramps to {to}");
    }
    assert_eq!(ramp.last().unwrap().2, 3.0, "last node hits 1 + peak");
    assert!(w.drift_ramp(1).is_empty(), "no ramp on a single node");
    let zipf = WorkloadSpec::parse("zipf").unwrap();
    assert!(zipf.drift_ramp(4).is_empty(), "only the drift family ramps");
}

// ---------------------------------------------------------------------
// 2. Differential + live delivery at integration-test scale.
// ---------------------------------------------------------------------

#[test]
fn every_family_agrees_across_the_differential_harness() {
    for (label, cfg) in workload_conformance_matrix(11) {
        if let Err(d) = run_differential(&cfg, "lobster") {
            panic!("workload {label}: {d}");
        }
    }
}

#[test]
fn live_engine_delivers_every_family_exactly_as_scheduled() {
    for w in WorkloadSpec::all_families(96) {
        let dataset = w.dataset(5);
        let cfg = EngineConfig {
            consumers: 2,
            batch_size: 4,
            loader_threads: 2,
            preproc_threads: 2,
            epochs: 2,
            seed: 5,
            train: Duration::from_micros(100),
            access: w.access(),
            ..EngineConfig::default()
        };
        let store = Arc::new(SyntheticStore::new(dataset.clone(), Duration::ZERO, 0.0));
        let ins = Instruments::enabled();
        let report = run_with(store, cfg.clone(), ins.clone());
        assert!(report.delivered > 0, "{}: nothing delivered", w.label());
        if let Err(d) = check_engine_delivery(&dataset, &cfg, &report, &ins) {
            panic!("workload {}: {d}", w.label());
        }
    }
}

// ---------------------------------------------------------------------
// 3. The estimate showdown, directionally, at test scale.
// ---------------------------------------------------------------------

#[test]
fn quantile_estimate_beats_mean_on_the_bimodal_family() {
    use lobster_repro::core::{policy_by_name, ModelProfile};
    use lobster_repro::pipeline::{ClusterSim, ConfigBuilder, ElasticSimConfig};

    let w = WorkloadSpec::parse("bimodal:samples=384").unwrap();
    let run = |estimate: WorkEstimate| -> f64 {
        let dataset = w.dataset(42);
        let cache_bytes = dataset.total_bytes();
        let cfg = ConfigBuilder::new()
            .nodes(2)
            .gpus_per_node(2)
            .batch_size(8)
            .pipeline_threads(8)
            .cache_bytes(cache_bytes)
            .dataset(dataset)
            .epochs(3)
            .seed(42)
            .access(w.access())
            .model(ModelProfile::new("bimodal-showdown", 4e-4, 0.7, 10.0))
            .elastic(ElasticSimConfig {
                workers: 8,
                initial_preproc: 1,
                work_factor: 1,
                work_factor_step: None,
                churn: false,
                frozen: false,
                estimate,
            })
            .build();
        let (report, _) = ClusterSim::new(cfg, policy_by_name("lobster").unwrap()).run_observed();
        let steady = &report.epochs[1..];
        steady.iter().map(|e| e.wall_s).sum::<f64>() / steady.len() as f64
    };
    let mean_s = run(WorkEstimate::Mean);
    let quant_s = run(WorkEstimate::Quantile(900));
    assert!(
        quant_s < mean_s,
        "p90 provisioning ({quant_s:.4}s) must beat mean provisioning ({mean_s:.4}s) \
         on the bimodal workload"
    );
}
