//! Stress/soak test for the elastic worker pool (ISSUE 5 satellite 1): a
//! 64-worker pool under seeded storage faults with forced role churn on
//! every tick. The engine must deliver the exact schedule-determined
//! sample multisets (byte-for-byte integrity fingerprint) no matter how
//! often the controller re-rolls worker roles mid-run, and every decision
//! must conserve the pool.
//!
//! No assertion here depends on wall-clock speed — the watchdog only
//! turns a deadlock into a clean panic (PR 4 pattern).

use lobster_repro::core::elastic::DEFAULT_DWELL_TICKS;
use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::Instruments;
use lobster_repro::runtime::{expected_integrity, run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::{FaultSpec, SlowdownProfile};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Run `f` under a watchdog thread: a deadlock becomes a clean panic
/// after `limit` instead of a test that never returns. The limit only
/// bounds hangs — it is far above any plausible healthy runtime, so a
/// loaded CI box cannot trip it.
fn with_watchdog<T: Send + 'static>(limit: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(v) => {
            let _ = worker.join();
            v
        }
        Err(_) => panic!("watchdog: engine run did not complete within {limit:?} (deadlock?)"),
    }
}

/// 64-worker pool: 8 consumers × batch 4, 48 loaders + 16 preprocessing
/// workers, with a mid-run 8× preprocessing step so the controller has a
/// real reason to re-balance on top of the forced churn.
fn stress_cfg(seed: u64) -> EngineConfig {
    EngineConfig {
        consumers: 8,
        batch_size: 4,
        loader_threads: 48,
        preproc_threads: 16,
        epochs: 3,
        seed,
        work_factor: 1,
        work_factor_step: Some((10, 8)),
        train: Duration::from_micros(200),
        elastic: true,
        elastic_churn: true,
        ..EngineConfig::default()
    }
}

/// The full gauntlet: transient read failures, stalls, and a slowdown
/// ramp, all seeded, while every tick force-churns worker roles. The
/// delivered multiset must match the fault-free schedule exactly and the
/// 64-worker pool must be conserved across every flip.
#[test]
fn churning_64_worker_pool_survives_seeded_faults_with_exact_delivery() {
    let seed = 1009;
    let dataset = Dataset::generate(
        "elastic-stress",
        320,
        SizeDistribution::Uniform {
            lo: 1_000,
            hi: 24_000,
        },
        seed,
    );
    let cfg = stress_cfg(seed);
    let expected = expected_integrity(&dataset, &cfg);

    let spec = FaultSpec {
        transient_rate: 0.08,
        stall_rate: 0.03,
        stall: Duration::from_millis(1),
        slowdown: vec![SlowdownProfile::Ramp {
            from: 1.0,
            to: 3.0,
            over_s: 0.2,
        }],
        seed: 4242,
        ..FaultSpec::default()
    };
    let plan = spec.compile().unwrap();
    let store = Arc::new(SyntheticStore::with_faults(
        dataset,
        Duration::from_micros(20),
        0.0,
        plan,
    ));

    let report = with_watchdog(Duration::from_secs(120), move || {
        run_with(store, cfg, Instruments::enabled())
    });

    assert!(!report.aborted, "faults must be healed, not fatal");
    // 320 / (8 × 4) = 10 iterations per epoch × 3 epochs.
    assert_eq!(report.iterations, 30);
    assert_eq!(report.delivered, 960);
    // Delivered-sample multiset exactness: the integrity fingerprint is
    // order-insensitive per iteration and covers every delivered byte, so
    // equality here means the churned, fault-injected run handed the
    // consumers exactly the schedule-determined multisets.
    assert_eq!(
        report.integrity, expected,
        "role churn + faults changed WHAT was delivered"
    );

    // One decision per tick; every decision conserves the 64-worker pool.
    assert_eq!(report.role_flips.len() as u64, report.iterations);
    for d in &report.role_flips {
        let loaders: u32 = d.loader_queues.iter().sum();
        assert_eq!(
            loaders + d.preproc_after,
            64,
            "pool leaked a worker at tick {}",
            d.tick
        );
    }

    // The forced churn must actually churn: with 16 preproc-eligible
    // workers the dwell window cannot starve the swapper.
    let churned = report
        .role_flips
        .iter()
        .filter(|d| !d.flipped.is_empty())
        .count();
    assert!(
        churned >= report.role_flips.len() / 2,
        "64-worker churn should flip on most ticks: {churned}/{}",
        report.role_flips.len()
    );

    // Hysteresis holds even under churn: no worker flips twice within the
    // dwell window.
    let mut last_flip: HashMap<u32, u64> = HashMap::new();
    for d in &report.role_flips {
        for &w in &d.flipped {
            if let Some(&prev) = last_flip.get(&w) {
                assert!(
                    d.tick - prev >= DEFAULT_DWELL_TICKS,
                    "worker {w} flipped at ticks {prev} and {} (dwell {DEFAULT_DWELL_TICKS})",
                    d.tick
                );
            }
            last_flip.insert(w, d.tick);
        }
    }

    // The healing was real work, not a clean run in disguise.
    assert!(
        report.retries > 0,
        "seeded transients must surface as retries"
    );
}

/// Same pool, clean store, five seeds: soak the role-board protocol
/// itself. Every seed must deliver its exact fingerprint and keep one
/// decision per tick.
#[test]
fn churn_soak_across_seeds_preserves_integrity() {
    for seed in [1u64, 2, 3, 4, 5] {
        let dataset = Dataset::generate(
            "elastic-soak",
            160,
            SizeDistribution::Constant { bytes: 8_192 },
            seed,
        );
        let mut cfg = stress_cfg(seed);
        cfg.epochs = 2;
        let expected = expected_integrity(&dataset, &cfg);
        let store = Arc::new(SyntheticStore::new(dataset, Duration::ZERO, 0.0));
        let report = with_watchdog(Duration::from_secs(120), move || {
            run_with(store, cfg, Instruments::disabled())
        });
        assert!(!report.aborted, "seed {seed}");
        assert_eq!(report.integrity, expected, "seed {seed}: delivery drifted");
        assert_eq!(
            report.role_flips.len() as u64,
            report.iterations,
            "seed {seed}"
        );
    }
}
