//! Integration tests for the beyond-paper extension features: fault
//! injection, KV-partitioned caching, the MinIO baseline, and partition
//! schemes.

use lobster_repro::core::policy_by_name;
use lobster_repro::data::{imagenet_1k, PartitionScheme};
use lobster_repro::pipeline::{ClusterSim, ConfigBuilder, ExperimentConfig};
use lobster_repro::storage::SlowdownProfile;

fn base_cfg(nodes: usize) -> ExperimentConfig {
    ConfigBuilder::new()
        .nodes(nodes)
        .gpus_per_node(4)
        .batch_size(16)
        .cache_bytes((40u64 << 30) / 512)
        .epochs(3)
        .dataset(imagenet_1k(512, 42))
        .build()
}

#[test]
fn slow_node_costs_time_and_adaptive_absorbs_part_of_it() {
    let nominal_pt = ClusterSim::new(base_cfg(4), policy_by_name("pytorch").unwrap())
        .run()
        .0;
    let nominal_lb = ClusterSim::new(base_cfg(4), policy_by_name("lobster").unwrap())
        .run()
        .0;

    let slow = |mut c: ExperimentConfig| {
        c.node_slowdown = SlowdownProfile::constants(&[1.0, 1.0, 2.5, 1.0]);
        c
    };
    let slow_pt = ClusterSim::new(slow(base_cfg(4)), policy_by_name("pytorch").unwrap())
        .run()
        .0;
    let slow_lb = ClusterSim::new(slow(base_cfg(4)), policy_by_name("lobster").unwrap())
        .run()
        .0;

    // The fault costs everyone something…
    assert!(slow_pt.mean_epoch_s() > nominal_pt.mean_epoch_s());
    // …but the adaptive policy degrades no more than the static one.
    let pt_factor = slow_pt.mean_epoch_s() / nominal_pt.mean_epoch_s();
    let lb_factor = slow_lb.mean_epoch_s() / nominal_lb.mean_epoch_s();
    assert!(
        lb_factor <= pt_factor + 0.02,
        "lobster degraded {lb_factor:.2}x vs pytorch {pt_factor:.2}x"
    );
}

#[test]
fn kv_partitioning_trades_local_hits_for_remote_hits() {
    let rep = ClusterSim::new(base_cfg(4), policy_by_name("lobster").unwrap())
        .run()
        .0;
    let mut cfg = base_cfg(4);
    cfg.kv_partitioned = true;
    let kv = ClusterSim::new(cfg, policy_by_name("lobster").unwrap())
        .run()
        .0;

    // Accounting still balances under KV placement.
    for e in &kv.epochs {
        assert!(e.local_hits + e.remote_hits + e.misses > 0);
    }
    // Hash-owner placement serves most hits remotely.
    let remote_kv: u64 = kv.steady_epochs().iter().map(|e| e.remote_hits).sum();
    let remote_rep: u64 = rep.steady_epochs().iter().map(|e| e.remote_hits).sum();
    assert!(
        remote_kv > remote_rep,
        "KV placement must shift traffic to the remote tier: {remote_kv} vs {remote_rep}"
    );
    // And its local hit ratio cannot beat consume-side replication.
    assert!(kv.mean_hit_ratio() <= rep.mean_hit_ratio() + 1e-9);
}

#[test]
fn minio_beats_lru_but_not_reuse_aware_eviction() {
    let pt = ClusterSim::new(base_cfg(1), policy_by_name("pytorch").unwrap())
        .run()
        .0;
    let minio = ClusterSim::new(base_cfg(1), policy_by_name("minio").unwrap())
        .run()
        .0;
    let lobster = ClusterSim::new(base_cfg(1), policy_by_name("lobster").unwrap())
        .run()
        .0;
    // Pinning a static subset beats pure LRU churn on permutation streams…
    assert!(
        minio.mean_hit_ratio() > pt.mean_hit_ratio(),
        "minio {} vs pytorch {}",
        minio.mean_hit_ratio(),
        pt.mean_hit_ratio()
    );
    // …but loses to reuse-distance-aware eviction.
    assert!(minio.mean_hit_ratio() < lobster.mean_hit_ratio());
}

#[test]
fn node_local_shuffle_with_fitting_shard_is_near_perfect_for_everyone() {
    // Shard ≈ cache: after warm-up every access hits locally, even for the
    // recency-based baseline.
    let mut cfg = base_cfg(4);
    cfg.partition = PartitionScheme::NodeLocalShuffle;
    // Cache sized to hold a full shard comfortably.
    cfg.cluster.cache_bytes = cfg.dataset.total_bytes() / 3;
    let pt = ClusterSim::new(cfg, policy_by_name("pytorch").unwrap())
        .run()
        .0;
    assert!(
        pt.mean_hit_ratio() > 0.9,
        "local shuffle with fitting shard should hit ~100%: {}",
        pt.mean_hit_ratio()
    );
}

#[test]
fn global_shuffle_is_the_harder_regime() {
    let mut local_cfg = base_cfg(4);
    local_cfg.partition = PartitionScheme::NodeLocalShuffle;
    local_cfg.cluster.cache_bytes = local_cfg.dataset.total_bytes() / 3;
    let mut global_cfg = base_cfg(4);
    global_cfg.cluster.cache_bytes = global_cfg.dataset.total_bytes() / 3;

    let local = ClusterSim::new(local_cfg, policy_by_name("pytorch").unwrap())
        .run()
        .0;
    let global = ClusterSim::new(global_cfg, policy_by_name("pytorch").unwrap())
        .run()
        .0;
    assert!(
        global.mean_hit_ratio() < local.mean_hit_ratio(),
        "global shuffle must be harder on the cache: {} vs {}",
        global.mean_hit_ratio(),
        local.mean_hit_ratio()
    );
}
