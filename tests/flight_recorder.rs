//! Flight recorder end-to-end guarantees (DESIGN.md §12).
//!
//! Two contracts are proven here, at the whole-engine level rather than
//! unit scale:
//!
//! 1. **Golden dump**: a live engine run with seeded poison faults panics
//!    a worker, and the teardown hook's `flightdump_worker_panic_*.json`
//!    retains exactly the recorder's last-K window — byte-for-byte equal
//!    to re-serializing `Instruments::flight_snapshot()` from the same
//!    run, with the dump's fault events matching the engine report.
//! 2. **Zero allocation**: the disabled flight facet never runs its
//!    closures (counting-allocator proof, same harness as
//!    `tests/zero_cost.rs`), and the *enabled* steady-state record path is
//!    also allocation-free once the ring exists — the property that makes
//!    an always-on recorder affordable.
//!
//! The allocation counter is process-global, so every measured window and
//! the allocation-heavy engine run serialize on one gate mutex.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use lobster_repro::data::{Dataset, SizeDistribution};
use lobster_repro::metrics::{
    FlightDump, FlightEvent, FlightFault, FlightTier, Instruments, StageSample,
    DEFAULT_FLIGHT_CAPACITY,
};
use lobster_repro::runtime::{run_with, EngineConfig, SyntheticStore};
use lobster_repro::storage::FaultSpec;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Tests in this binary run on parallel harness threads but share the one
/// process-wide allocation counter; each test holds this for its measured
/// window (or, for the engine test, its allocation storm).
static GATE: Mutex<()> = Mutex::new(());

#[test]
fn worker_panic_dump_is_the_recorders_last_k_window() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let dir = std::env::temp_dir().join(format!("lobster_flight_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create dump dir");

    let dataset = Dataset::generate(
        "flight_golden",
        128,
        SizeDistribution::Constant { bytes: 4_000 },
        20220822,
    );
    // Poison-only faults: every injected fault is a loader worker panic,
    // so the dump's fault tally must line up with the engine report.
    let plan = FaultSpec::parse("poison=0.15,seed=20220822")
        .expect("spec parses")
        .compile()
        .expect("spec compiles");
    let store = std::sync::Arc::new(SyntheticStore::with_faults(
        dataset,
        Duration::from_micros(50),
        500e6,
        plan,
    ));
    let cfg = EngineConfig {
        consumers: 2,
        batch_size: 8,
        loader_threads: 2,
        preproc_threads: 2,
        epochs: 1,
        seed: 20220822,
        train: Duration::from_micros(200),
        ..EngineConfig::default()
    };

    let ins = Instruments::enabled();
    ins.set_flight_dir(&dir);
    let report = run_with(store, cfg, ins.clone());

    assert!(
        report.worker_panics > 0,
        "seeded poison plan must panic at least one worker"
    );

    // The teardown hook wrote exactly one worker-panic dump.
    let mut dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightdump_worker_panic_") && n.ends_with(".json"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "one teardown dump expected: {dumps:?}");
    let dump_path = dumps.pop().unwrap();

    let dump = FlightDump::from_json(&std::fs::read_to_string(&dump_path).expect("read dump"))
        .expect("dump parses");
    assert_eq!(dump.trigger, "worker_panic");
    assert_eq!(dump.total_events, ins.flight_recorded());
    assert!(
        dump.total_events <= DEFAULT_FLIGHT_CAPACITY as u64,
        "this small run must fit the ring, so the window is complete"
    );

    // Golden check: the dump's retained window re-serializes to the same
    // bytes as a fresh snapshot of the live recorder. Nothing recorded
    // after the teardown dump, so the two views must be identical.
    let live = serde_json::to_string(&ins.flight_snapshot()).expect("snapshot renders");
    let dumped = serde_json::to_string(&dump.events).expect("dump events render");
    assert_eq!(
        dumped, live,
        "dump window must match the live trace tail byte-for-byte"
    );

    // Every worker panic left exactly one WorkerPanic fault event.
    let panics_in_window = dump
        .events
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                FlightEvent::Fault {
                    kind: FlightFault::WorkerPanic,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(panics_in_window, report.worker_panics);

    // The window also carries the run's iteration history.
    let iterations = dump
        .events
        .iter()
        .filter(|r| matches!(r.event, FlightEvent::Iteration { .. }))
        .count();
    assert!(iterations > 0, "iteration events must be retained");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_flight_facet_allocates_nothing_and_runs_no_closures() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ins = Instruments::disabled();
    let before = allocations();
    for i in 0..10_000u64 {
        // The closure allocates on purpose (the counting allocator would
        // see it); a disabled bundle must never execute it.
        ins.flight(|| {
            #[allow(clippy::useless_vec)]
            let v = vec![i];
            FlightEvent::Iteration {
                iter: v[0],
                gap_us: 0,
                ewma_gap_us: 0,
            }
        });
        ins.flight_fetch_us(FlightTier::Cache, i);
        ins.flight_fetch_us(FlightTier::Store, i);
    }
    assert_eq!(ins.flight_recorded(), 0);
    assert!(ins.flight_snapshot().is_empty());
    assert_eq!(
        allocations() - before,
        0,
        "disabled flight path must not allocate"
    );
}

#[test]
fn enabled_steady_state_record_path_allocates_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());

    let ins = Instruments::enabled();
    // Warm-up: the ring and tier histograms are preallocated at
    // construction; a few records prove any lazy state settles first.
    for i in 0..8u64 {
        ins.flight(|| FlightEvent::Iteration {
            iter: i,
            gap_us: 10,
            ewma_gap_us: 10,
        });
        ins.flight_fetch_us(FlightTier::Cache, 50);
    }

    let before = allocations();
    for i in 0..10_000u64 {
        ins.flight(|| FlightEvent::Stage {
            iter: i,
            node: 0,
            gpu: 1,
            iter_us: 1_000,
            stages: StageSample::default(),
        });
        ins.flight_fetch_us(FlightTier::Cache, 40 + (i % 7));
        ins.flight_fetch_us(FlightTier::Store, 400 + (i % 13));
    }
    assert_eq!(
        allocations() - before,
        0,
        "enabled steady-state flight record path must not allocate"
    );
    // The window wrapped (10k + warm-up > default capacity): proof the
    // measured loop really exercised overwrite, not an empty stub.
    assert_eq!(ins.flight_recorded(), 10_008);
    assert_eq!(ins.flight_snapshot().len(), DEFAULT_FLIGHT_CAPACITY);
}
