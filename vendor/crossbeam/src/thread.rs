//! Scoped threads with crossbeam's `scope(|s| ...)` shape, backed by
//! `std::thread::scope`.

use std::any::Any;
use std::marker::PhantomData;

/// Handle passed to the scope closure; `spawn` borrows from the enclosing
/// environment like crossbeam's scope does.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

// Manual Copy/Clone: derive would bound them on the lifetimes' types.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to the enclosing [`scope`] call. The closure
    /// receives the scope handle (crossbeam's signature) so nested spawns
    /// are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
            _marker: PhantomData,
        }
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before this
/// returns. A child panic propagates as a panic when the scope joins (the
/// `Result` is kept for API compatibility and is always `Ok`), so callers'
/// `.expect(...)` still fail loudly.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let sum = AtomicU64::new(0);
        super::scope(|s| {
            for i in 1..=10u64 {
                let sum = &sum;
                s.spawn(move |_| sum.fetch_add(i, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let hits = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
