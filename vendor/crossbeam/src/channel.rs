//! MPMC channels with crossbeam's API and disconnection semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message arrives or the last sender drops.
    not_empty: Condvar,
    /// Signalled when space frees up or the last receiver drops.
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver has dropped.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::send_timeout`].
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout window.
    Timeout(T),
    /// Every receiver has dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("SendTimeoutError::Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders remain.
    Empty,
    /// Nothing queued and every sender has dropped.
    Disconnected,
}

/// The sending half; clonable.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clonable (each message goes to exactly one receiver).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Create a channel holding at most `cap` in-flight messages (a zero cap is
/// treated as one: this shim does not implement rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

/// Create a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
    shared.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Send `value`, blocking while the channel is full. Fails only when
    /// every receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = lock(&self.0);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .0
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Send `value`, blocking at most `timeout` while the channel is full.
    /// Returns the value on timeout or disconnection so the caller can
    /// retry or abandon it.
    pub fn send_timeout(
        &self,
        value: T,
        timeout: std::time::Duration,
    ) -> Result<(), SendTimeoutError<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = lock(&self.0);
        loop {
            if inner.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            let (guard, _) = self
                .0
                .not_full
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.0).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.0).senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.0);
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // Wake blocked receivers so they can observe disconnection.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message arrives or every sender drops.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock(&self.0);
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .0
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.0);
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            Ok(v)
        } else if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.0).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator: yields until the channel is empty *and* every
    /// sender has dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        lock(&self.0).receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.0);
        inner.receivers -= 1;
        let disconnected = inner.receivers == 0;
        drop(inner);
        if disconnected {
            // Wake blocked senders so they can observe disconnection.
            self.0.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_len() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7), "queued messages drain after disconnect");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_of_all_receivers_fails_send() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap().unwrap();
    }

    #[test]
    fn multi_consumer_partitions_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || rx2.iter().count());
        let mine = rx.iter().count();
        let theirs = h.join().unwrap();
        assert_eq!(mine + theirs, 100);
    }
}
