//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim implements the two pieces the workspace uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** channels (`bounded`,
//!   `unbounded`) with `try_recv`, blocking `recv`/`send`, `len`, `iter`,
//!   clonable `Sender`/`Receiver`, and crossbeam's disconnection
//!   semantics (receive drains remaining messages after the last sender
//!   drops; send fails once the last receiver drops).
//! * [`scope`] — scoped threads over `std::thread::scope`. Child panics
//!   propagate when the scope joins, which preserves the fail-loud
//!   behaviour callers rely on via `.expect(...)`.

pub mod channel;
pub mod thread;

pub use thread::{scope, Scope, ScopedJoinHandle};
