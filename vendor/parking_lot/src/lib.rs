//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be fetched. This shim provides the small API
//! surface the workspace uses — `Mutex` and `RwLock` with non-poisoning
//! `lock()`/`read()`/`write()` — backed by `std::sync`. Poisoned locks are
//! recovered instead of propagated, matching parking_lot's semantics of
//! not having poisoning at all.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
