//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` working with the same source
//! syntax (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`) but replaces criterion's statistics
//! with a simple timed loop: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and the mean per-iteration time is printed.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` also works (benches here import it
/// from `std::hint`, but the classic path is common).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Warm-up and calibration: find an iteration count that takes a
    // perceptible but short time per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let runs = iters.saturating_mul(sample_size as u64).max(1);
    let mean = total.as_nanos() as f64 / runs as f64;
    let floor = best.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {id:<48} mean {mean:>12.1} ns/iter (best sample {floor:>12.1} ns/iter)");
}

/// Matches both criterion forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        let mut c = super::Criterion::default().sample_size(2);
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
