//! Offline stand-in for `serde_json`: renders and parses the value tree
//! defined by the companion `serde` shim.
//!
//! Supports what the workspace uses: `to_string`, `to_string_pretty`
//! (2-space indent, like real serde_json), `from_str`, `from_value`, and a
//! [`Value`] with `as_*`/indexing accessors. Map order is preserved, so
//! equal inputs render to byte-identical strings (the determinism tests
//! rely on this).

use std::fmt;

pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

/// Error from parsing or (nominally) rendering JSON.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parse a JSON string into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    from_value(value)
}

/// Deserialize a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            render_seq(items.iter(), out, indent, depth, '[', ']', |v, o, i, d| {
                render(v, o, i, d)
            })
        }
        Value::Object(map) => render_seq(
            map.iter(),
            out,
            indent,
            depth,
            '{',
            '}',
            |(k, v), o, i, d| {
                render_string(k, o);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                render(v, o, i, d);
            },
        ),
    }
}

fn render_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut each: F,
) where
    I: Iterator,
    F: FnMut(I::Item, &mut String, Option<usize>, usize),
{
    out.push(open);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        newline_indent(out, indent, depth + 1);
        each(item, out, indent, depth + 1);
    }
    if !first {
        newline_indent(out, indent, depth);
    }
    out.push(close);
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // `{}` is Rust's shortest round-trip form; it prints integral
            // floats without a fraction ("3"), which parses back as an
            // integer Number — the Deserialize impls accept that.
            out.push_str(&f.to_string())
        }
        // Real serde_json refuses NaN/inf; emitting null keeps figure
        // output loadable instead of aborting a long experiment run.
        Number::F(_) => out.push_str("null"),
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent over chars.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::String),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::F(text.parse().map_err(|_| Error::new("invalid float"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse().map_err(|_| Error::new("invalid integer"))?)
        } else {
            Number::U(text.parse().map_err(|_| Error::new("invalid integer"))?)
        };
        Ok(Value::Number(number))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"hi\nthere","d":null},"e":true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_has_two_space_indent() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn indexing_and_accessors() {
        let v: Value = from_str(r#"{"ts":12.5,"tags":["x","y"]}"#).unwrap();
        assert_eq!(v["ts"].as_f64(), Some(12.5));
        assert_eq!(v["tags"][1].as_str(), Some("y"));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn large_u64_survives() {
        let s = u64::MAX.to_string();
        let v: Value = from_str(&s).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(to_string(&v).unwrap(), s);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
