//! Collection strategies: `vec` and `hash_set` with a size range.

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// `Vec` of `size` elements drawn from `element`, `size` uniform in the
/// given half-open range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `HashSet` of distinct elements; sampling retries duplicates, so the
/// element strategy's domain must comfortably exceed the requested size.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    assert!(size.start < size.end, "empty hash_set size range");
    HashSetStrategy { element, size }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut set = HashSet::new();
        let mut attempts = 0usize;
        // Duplicates are retried; the cap keeps a too-narrow element domain
        // from looping forever (the set is returned smaller instead).
        while set.len() < target && attempts < 100 * (target + 1) {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_len_in_range() {
        let s = vec(0u32..100, 3..9);
        let mut rng = TestRng::seeded(1);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_is_distinct_and_sized() {
        let s = hash_set(any::<u64>(), 2..32);
        let mut rng = TestRng::seeded(2);
        for _ in 0..50 {
            let set = s.sample(&mut rng);
            assert!((2..32).contains(&set.len()));
        }
    }

    #[test]
    fn hash_set_saturates_small_domains() {
        let s = hash_set(0usize..8, 1..8);
        let mut rng = TestRng::seeded(3);
        for _ in 0..50 {
            let set = s.sample(&mut rng);
            assert!(!set.is_empty() && set.len() < 8);
        }
    }
}
