//! Value-generation strategies: ranges, tuples, `any`, map, union.

use crate::runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of test values. Unlike real proptest there is no value
/// *tree* (shrinking); a strategy just samples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Object-safe bridge so heterogeneous strategies can share a box.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges.
// ---------------------------------------------------------------------------

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
uint_range!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

// ---------------------------------------------------------------------------
// `any::<T>()`.
// ---------------------------------------------------------------------------

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seeded(11)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let u = (5u64..17).sample(&mut r);
            assert!((5..17).contains(&u));
            let i = (-3i64..4).sample(&mut r);
            assert!((-3..4).contains(&i));
            let f = (1.5f64..2.5).sample(&mut r);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ];
        let mut r = rng();
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            let v = s.sample(&mut r);
            if v < 20 {
                saw_low = true;
            } else {
                assert!((101..111).contains(&v));
                saw_high = true;
            }
        }
        assert!(saw_low && saw_high, "union should visit both arms");
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..2, 10u64..20, any::<bool>()).sample(&mut r);
        assert!(a < 2);
        assert!((10..20).contains(&b));
        let _ = c;
    }
}
