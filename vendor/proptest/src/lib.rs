//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the workspace's property tests running with the
//! same syntax: the `proptest!` macro, range/tuple/`any` strategies,
//! `prop_map`, `prop_oneof!`, `proptest::collection::{vec, hash_set}`,
//! `prop_assume!`, and the `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//! * cases are generated from a *deterministic* RNG seeded by the test
//!   name, so runs are reproducible even without a regressions file;
//! * failing cases are **not shrunk** — the panic message carries the case
//!   number, the seed, and the failing assertion instead (callers that need
//!   minimal counterexamples shrink at the domain level, e.g.
//!   `lobster_conformance::shrink_trace`);
//! * regression corpora live in `proptest-regressions/seeds.txt` of the
//!   *using* crate (one `<test_name> 0x<seed-hex>` per line) instead of
//!   per-test `.proptest-regressions` files. Recorded seeds are replayed
//!   before the generation sweep on every run, and new failures are
//!   appended automatically — commit the file so counterexamples are never
//!   lost.

pub mod collection;
pub mod runner;
pub mod strategy;

/// Everything the tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Strategy};

/// The entry macro: expands each `fn name(pat in strategy, ...) { body }`
/// into a `#[test]`-able function that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::runner::ProptestConfig = $cfg;
            // CARGO_MANIFEST_DIR resolves at the *use site*, so each crate's
            // failures land in its own proptest-regressions/seeds.txt.
            $crate::runner::run_cases_in(
                config,
                ::core::option_env!("CARGO_MANIFEST_DIR"),
                stringify!($name),
                |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);)+
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Skip this case (and sample a fresh one) when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::runner::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
