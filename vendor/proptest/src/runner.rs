//! Case runner and deterministic RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Returned by `prop_assume!` to discard the current case.
pub struct Reject;

/// Deterministic generator (splitmix64): every run of a given test samples
/// the same cases, so failures are reproducible without a regressions file.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Prints which case was executing if the test body panics, since this
/// shim does not shrink failures.
struct CaseReporter<'a> {
    test: &'a str,
    case: u32,
    attempt: u64,
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed on case {} (attempt seed offset {}); \
                 cases are deterministic, rerun to reproduce",
                self.test, self.case, self.attempt
            );
        }
    }
}

/// Run `body` for `config.cases` generated cases. `Err(Reject)` (from
/// `prop_assume!`) discards the case and samples a fresh one, up to a
/// bounded number of attempts.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Reject>,
{
    let base = fnv1a(test_name);
    for case in 0..config.cases {
        let mut accepted = false;
        for attempt in 0..1_000u64 {
            let seed = base
                .wrapping_add((case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
                .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::seeded(seed);
            let reporter = CaseReporter {
                test: test_name,
                case,
                attempt,
            };
            let result = body(&mut rng);
            std::mem::forget(reporter);
            if result.is_ok() {
                accepted = true;
                break;
            }
        }
        if !accepted {
            panic!(
                "proptest shim: test `{test_name}` rejected 1000 consecutive cases \
                 (prop_assume! condition too strict?)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seeded(7);
        let mut b = TestRng::seeded(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::seeded(3);
        for _ in 0..1_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rejects_are_retried() {
        let mut calls = 0;
        run_cases(ProptestConfig::with_cases(4), "retry", |_| {
            calls += 1;
            if calls % 2 == 1 {
                Err(Reject)
            } else {
                Ok(())
            }
        });
        assert_eq!(calls, 8);
    }
}
