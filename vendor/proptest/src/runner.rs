//! Case runner and deterministic RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Returned by `prop_assume!` to discard the current case.
pub struct Reject;

/// Deterministic generator (splitmix64): every run of a given test samples
/// the same cases, so failures are reproducible without a regressions file.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Path of the regression corpus for the crate at `manifest_dir`.
fn seeds_path(manifest_dir: &str) -> std::path::PathBuf {
    std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join("seeds.txt")
}

/// Parse the corpus: one `<test_name> 0x<seed-hex>` entry per line, `#`
/// comments and blank lines ignored. Unparseable lines are skipped (the
/// corpus is hand-editable).
fn load_seeds(manifest_dir: &str, test: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(seeds_path(manifest_dir)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (name, seed) = line.split_once(char::is_whitespace)?;
            if name != test {
                return None;
            }
            u64::from_str_radix(seed.trim().trim_start_matches("0x"), 16).ok()
        })
        .collect()
}

/// Append a failing seed to the corpus (best-effort: a test failure must
/// never be masked by an I/O error here). Duplicates are skipped so
/// repeated failing runs do not grow the file.
fn record_seed(manifest_dir: &str, test: &str, seed: u64) {
    if load_seeds(manifest_dir, test).contains(&seed) {
        return;
    }
    let path = seeds_path(manifest_dir);
    let Some(parent) = path.parent() else { return };
    if std::fs::create_dir_all(parent).is_err() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        if writeln!(f, "{test} {seed:#018x}").is_ok() {
            eprintln!(
                "proptest shim: recorded failing seed {seed:#018x} for `{test}` in {} \
                 — commit this file so the counterexample is replayed forever",
                path.display()
            );
        }
    }
}

/// Prints which case was executing if the test body panics (this shim does
/// not shrink failures) and persists the failing seed to the crate's
/// `proptest-regressions/seeds.txt`.
struct CaseReporter<'a> {
    test: &'a str,
    case: u32,
    attempt: u64,
    seed: u64,
    manifest_dir: Option<&'a str>,
    /// True while replaying an already-recorded corpus seed.
    replay: bool,
}

impl Drop for CaseReporter<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if self.replay {
            eprintln!(
                "proptest shim: test `{}` failed replaying recorded regression seed {:#018x}",
                self.test, self.seed
            );
        } else {
            eprintln!(
                "proptest shim: test `{}` failed on case {} (attempt {}, seed {:#018x}); \
                 cases are deterministic, rerun to reproduce",
                self.test, self.case, self.attempt, self.seed
            );
            if let Some(dir) = self.manifest_dir {
                record_seed(dir, self.test, self.seed);
            }
        }
    }
}

/// Run `body` for `config.cases` generated cases. `Err(Reject)` (from
/// `prop_assume!`) discards the case and samples a fresh one, up to a
/// bounded number of attempts.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Reject>,
{
    run_cases_in(config, None, test_name, body)
}

/// [`run_cases`] with regression-seed persistence rooted at `manifest_dir`
/// (the `proptest!` macro passes the use site's `CARGO_MANIFEST_DIR`).
/// Recorded counterexample seeds from `proptest-regressions/seeds.txt` are
/// replayed *before* the generation sweep, so a once-found failure is
/// retried on every future run; new failures are appended to the file.
pub fn run_cases_in<F>(
    config: ProptestConfig,
    manifest_dir: Option<&str>,
    test_name: &str,
    mut body: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), Reject>,
{
    if let Some(dir) = manifest_dir {
        for seed in load_seeds(dir, test_name) {
            let mut rng = TestRng::seeded(seed);
            let reporter = CaseReporter {
                test: test_name,
                case: 0,
                attempt: 0,
                seed,
                manifest_dir: Some(dir),
                replay: true,
            };
            // A rejected replay is fine: the prop_assume! path changed.
            let _ = body(&mut rng);
            std::mem::forget(reporter);
        }
    }

    let base = fnv1a(test_name);
    for case in 0..config.cases {
        let mut accepted = false;
        for attempt in 0..1_000u64 {
            let seed = base
                .wrapping_add((case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
                .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::seeded(seed);
            let reporter = CaseReporter {
                test: test_name,
                case,
                attempt,
                seed,
                manifest_dir,
                replay: false,
            };
            let result = body(&mut rng);
            std::mem::forget(reporter);
            if result.is_ok() {
                accepted = true;
                break;
            }
        }
        if !accepted {
            panic!(
                "proptest shim: test `{test_name}` rejected 1000 consecutive cases \
                 (prop_assume! condition too strict?)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seeded(7);
        let mut b = TestRng::seeded(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::seeded(3);
        for _ in 0..1_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn corpus_round_trips_and_skips_duplicates() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-corpus-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);

        assert!(load_seeds(&dir, "t").is_empty(), "missing file → no seeds");
        record_seed(&dir, "t", 0xdead_beef);
        record_seed(&dir, "t", 0xdead_beef); // duplicate: skipped
        record_seed(&dir, "other", 0x42);
        assert_eq!(load_seeds(&dir, "t"), vec![0xdead_beef]);
        assert_eq!(load_seeds(&dir, "other"), vec![0x42]);

        // Hand-edited content: comments, blanks, junk lines all tolerated.
        std::fs::write(
            seeds_path(&dir),
            "# corpus\n\nt 0x10\nt 20\nbroken-line\nt not-hex\n",
        )
        .unwrap();
        assert_eq!(load_seeds(&dir, "t"), vec![0x10, 0x20]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_seeds_are_replayed_before_generation() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-replay-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        let _ = std::fs::remove_dir_all(&dir);
        record_seed(&dir, "replayed", 0x77);

        let mut first_seed_draw = None;
        run_cases_in(
            ProptestConfig::with_cases(1),
            Some(&dir),
            "replayed",
            |rng| {
                first_seed_draw.get_or_insert(rng.next_u64());
                Ok(())
            },
        );
        // The first body invocation must have used the recorded seed.
        assert_eq!(first_seed_draw, Some(TestRng::seeded(0x77).next_u64()));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_are_retried() {
        let mut calls = 0;
        run_cases(ProptestConfig::with_cases(4), "retry", |_| {
            calls += 1;
            if calls % 2 == 1 {
                Err(Reject)
            } else {
                Ok(())
            }
        });
        assert_eq!(calls, 8);
    }
}
