//! The value tree: a JSON-shaped data model with order-preserving maps.

use std::fmt;

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A number, kept in its source representation so integers never pick up a
/// trailing `.0` and `u64::MAX` survives untruncated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// Integral view, if this number is an integer (floats with zero
    /// fractional part included, so `3.0` deserializes into integer fields).
    pub fn to_i128(self) -> Option<i128> {
        match self {
            Number::U(u) => Some(u as i128),
            Number::I(i) => Some(i as i128),
            Number::F(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i128),
            Number::F(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map, so serialization output is
/// deterministic and mirrors field declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert or replace `key`.
    pub fn insert(&mut self, key: String, value: Value) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_number()
            .and_then(|n| n.to_i128())
            .and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_number()
            .and_then(|n| n.to_i128())
            .and_then(|i| i64::try_from(i).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `Some(&value)` for a present object key or in-bounds array index.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.lookup(self)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Index into a [`Value`] by object key or array position.
pub trait ValueIndex {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_object().and_then(|m| m.get(self))
    }
}

impl ValueIndex for usize {
    fn lookup<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys/indices yield `Value::Null`, like serde_json.
    fn index(&self, index: I) -> &Value {
        index.lookup(self).unwrap_or(&NULL)
    }
}

/// Deserialization error: a message plus the field path it occurred under.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
    path: Vec<String>,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
            path: Vec::new(),
        }
    }

    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError::new(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Prefix the error's path with the field it occurred in.
    pub fn in_field(mut self, name: &str) -> DeError {
        self.path.insert(0, name.to_string());
        self
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.message)
        }
    }
}

impl std::error::Error for DeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Null);
        m.insert("a".into(), Value::Bool(true));
        m.insert("z".into(), Value::Bool(false));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z"), Some(&Value::Bool(false)));
    }

    #[test]
    fn index_falls_back_to_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"]["deeper"].is_null());
    }

    #[test]
    fn number_integral_views() {
        assert_eq!(Number::F(3.0).to_i128(), Some(3));
        assert_eq!(Number::F(3.5).to_i128(), None);
        assert_eq!(Number::U(u64::MAX).to_i128(), Some(u64::MAX as i128));
    }
}
