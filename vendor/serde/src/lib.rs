//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` + `serde_json` surface working by replacing serde's
//! visitor architecture with a much simpler *value-tree* model:
//!
//! * [`Serialize`] converts a type into a [`value::Value`] tree;
//! * [`Deserialize`] reconstructs a type from a `Value` tree;
//! * the companion `serde_json` shim renders/parses `Value` as JSON.
//!
//! The derive macros (re-exported from `serde_derive`) cover the shapes this
//! workspace uses: named-field structs, tuple/newtype structs, and enums
//! with unit, newtype, and struct variants (externally tagged, like real
//! serde). `#[serde(...)]` field attributes are not supported — the
//! workspace does not use any.
//!
//! Object maps preserve insertion order, so serialization is deterministic:
//! two runs producing equal values render to byte-identical JSON (the
//! determinism tests compare strings).

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Map, Number, Value};

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is missing from the input map. The default
    /// is an error; `Option<T>` overrides it to produce `None` so optional
    /// fields behave like real serde's `#[serde(default)]`-free `Option`.
    fn absent() -> Result<Self, DeError> {
        Err(DeError::new("missing required field"))
    }
}

/// Look up `name` in `map` and deserialize it, falling back to
/// [`Deserialize::absent`] when the key is not present. Used by the derive
/// macro for struct fields.
pub fn field<T: Deserialize>(map: &Map, name: &str) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(name)),
        None => T::absent().map_err(|e| e.in_field(name)),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Matches real serde_json's arbitrary-precision-free behaviour
        // closely enough for this workspace: values beyond u64 would lose
        // precision anyway, and the histogram sums it serializes stay far
        // below the u64 ceiling.
        match u64::try_from(*self) {
            Ok(u) => Value::Number(Number::U(u)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Number(Number::I(i)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if arr.len() != N {
            return Err(DeError::new(format!(
                "expected array of {N}, got array of {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, got array of {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Mirrors real serde's representation of `Duration`: a struct with `secs`
/// and `nanos` fields (lossless, unlike a float of seconds).
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs".to_string(), self.as_secs().to_value());
        map.insert("nanos".to_string(), self.subsec_nanos().to_value());
        Value::Object(map)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .ok_or_else(|| DeError::expected("number", v))?;
                n.to_i128()
                    .and_then(|w| <$t>::try_from(w).ok())
                    .ok_or_else(|| {
                        DeError::new(concat!("number out of range for ", stringify!($t)))
                    })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(s) = v.as_str() {
            return s.parse().map_err(|_| DeError::new("invalid u128 string"));
        }
        let n = v
            .as_number()
            .ok_or_else(|| DeError::expected("number", v))?;
        n.to_i128()
            .and_then(|w| u128::try_from(w).ok())
            .ok_or_else(|| DeError::new("number out of range for u128"))
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if let Some(s) = v.as_str() {
            return s.parse().map_err(|_| DeError::new("invalid i128 string"));
        }
        let n = v
            .as_number()
            .ok_or_else(|| DeError::expected("number", v))?;
        n.to_i128()
            .ok_or_else(|| DeError::new("expected integer for i128"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v.as_object().ok_or_else(|| DeError::expected("map", v))?;
        map.iter()
            .map(|(k, v)| T::from_value(v).map(|t| (k.clone(), t)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_object()
            .ok_or_else(|| DeError::expected("{secs, nanos} map", v))?;
        let secs: u64 = field(map, "secs")?;
        let nanos: u32 = field(map, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_is_none() {
        assert_eq!(<Option<u32>>::absent().unwrap(), None);
        assert!(u32::absent().is_err());
    }

    #[test]
    fn int_roundtrip_and_range_check() {
        let v = 300u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 300);
        assert!(u8::from_value(&v).is_err());
    }

    #[test]
    fn float_accepts_integer_numbers() {
        assert_eq!(f64::from_value(&Value::Number(Number::U(3))).unwrap(), 3.0);
    }

    #[test]
    fn duration_roundtrips_losslessly() {
        let d = std::time::Duration::new(7, 123_456_789);
        let v = d.to_value();
        assert_eq!(std::time::Duration::from_value(&v).unwrap(), d);
        assert!(std::time::Duration::from_value(&Value::Null).is_err());
    }
}
