//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` — the build
//! environment cannot fetch `syn`/`quote`, so the input is parsed with a
//! small hand-rolled scanner and the impls are emitted as source strings.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields                  → JSON object;
//! * newtype structs (`struct SimTime(pub u64)`) → the inner value;
//! * tuple structs with 2+ fields               → JSON array;
//! * enums with unit variants                   → `"Variant"`;
//! * enums with newtype variants                → `{"Variant": value}`;
//! * enums with struct variants                 → `{"Variant": {..fields}}`.
//!
//! Not supported (and unused in this workspace): generics, `#[serde(...)]`
//! attributes, tuple variants with 2+ fields. Unsupported input panics at
//! macro-expansion time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A minimal shape model.
// ---------------------------------------------------------------------------

enum Item {
    /// `struct Name { a: T, b: U }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T, U);` — arity only; types are recovered by inference.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { Unit, Newtype(T), Struct { a: T } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                arity: split_top_level(g.stream()).len(),
            }
        }
        ("struct", _) => panic!("serde stand-in derive: unit struct `{name}` is not supported"),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        _ => panic!("serde stand-in derive: cannot parse item `{name}`"),
    }
}

/// Skip any number of `#[...]` attributes followed by an optional
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' + the bracketed group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde stand-in derive: expected identifier, got {other:?}"),
    }
}

/// Split a token stream on top-level commas. Commas inside groups are
/// already hidden by tokenization; commas inside generic angle brackets
/// (`HashMap<K, V>`) are excluded by tracking `<`/`>` punct depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Field names of `{ a: T, pub b: U }` (attributes and visibility skipped).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            skip_attrs_and_vis(&chunk, &mut pos);
            expect_ident(&chunk, &mut pos)
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            skip_attrs_and_vis(&chunk, &mut pos);
            let name = expect_ident(&chunk, &mut pos);
            let shape = match chunk.get(pos) {
                None => VariantShape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = split_top_level(g.stream()).len();
                    if arity != 1 {
                        panic!(
                            "serde stand-in derive: tuple variant `{name}` with {arity} \
                             fields is not supported"
                        );
                    }
                    VariantShape::Newtype
                }
                Some(other) => {
                    panic!("serde stand-in derive: cannot parse variant `{name}`: {other:?}")
                }
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation (source strings, then `.parse()` back into tokens).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut map = ::serde::value::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::value::Value::Object(map)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::value::Value::Array(vec![{}])", elems.join(", ")),
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(inner) => {{\n\
                         let mut outer = ::serde::value::Map::new();\n\
                         outer.insert(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(inner));\n\
                         ::serde::value::Value::Object(outer)\n}}\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let pats = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => {{\n\
                             let mut inner = ::serde::value::Map::new();\n\
                             {inserts}\
                             let mut outer = ::serde::value::Map::new();\n\
                             outer.insert(\"{vn}\".to_string(), \
                             ::serde::value::Value::Object(inner));\n\
                             ::serde::value::Value::Object(outer)\n}}\n"
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "let map = v.as_object().ok_or_else(|| \
                 ::serde::value::DeError::expected(\"map for {name}\", v))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                body.push_str(&format!("{f}: ::serde::field(map, \"{f}\")?,\n"));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::value::DeError::expected(\"array for {name}\", v))?;\n\
                 if arr.len() != {arity} {{\n\
                 return Err(::serde::value::DeError::new(\
                 \"wrong tuple length for {name}\"));\n}}\n\
                 Ok({name}(\n"
            );
            for i in 0..*arity {
                body.push_str(&format!("::serde::Deserialize::from_value(&arr[{i}])?,\n"));
            }
            body.push_str("))");
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Newtype => keyed_arms.push_str(&format!(
                        "if let Some(inner) = map.get(\"{vn}\") {{\n\
                         return Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?));\n}}\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::field(fm, \"{f}\")?,\n"));
                        }
                        keyed_arms.push_str(&format!(
                            "if let Some(inner) = map.get(\"{vn}\") {{\n\
                             let fm = inner.as_object().ok_or_else(|| \
                             ::serde::value::DeError::expected(\
                             \"map for {name}::{vn}\", inner))?;\n\
                             return Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        ));
                    }
                }
            }
            // Omit the object probe entirely for all-unit enums so the
            // generated code has no unused `map` binding.
            let object_block = if keyed_arms.is_empty() {
                String::new()
            } else {
                format!("if let Some(map) = v.as_object() {{\n{keyed_arms}}}\n")
            };
            let body = format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 other => return Err(::serde::value::DeError::unknown_variant(other, \
                 \"{name}\")),\n}}\n}}\n\
                 {object_block}\
                 Err(::serde::value::DeError::expected(\"variant of {name}\", v))"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n}}\n"
    )
}
