#!/usr/bin/env sh
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
# Hard timeout: a deadlocked test must fail the gate, not hang it. The
# engine tests additionally carry their own in-process watchdogs (see
# tests/runtime_engine.rs) so a single stuck run dies long before this.
timeout 600 cargo test -q --workspace

echo "== elastic stress =="
# Elastic worker-pool soak (DESIGN.md §11): a 64-worker pool under seeded
# faults with forced role churn every tick must deliver exact multisets
# and conserve the pool across every flip. The hard timeout turns a
# role-board deadlock into a fast failure; the tests carry their own
# in-process watchdogs too.
timeout 300 cargo test -q --release --test elastic_stress

echo "== conformance smoke =="
# Differential gate (DESIGN.md §10): seeded configs through the analytical
# executor and the conformance DES, plus a live-engine delivery replay;
# every invariant observable must agree (exit 0), within a 60 s budget.
timeout 60 cargo run -q --release -p lobster-bench --bin conformance_smoke

echo "== conformance canary =="
# The harness proves it can catch a broken rule: every armed mutation must
# be DETECTED. Exit 2 is the expected (deliberately non-zero) outcome;
# anything else — agreement (0), a real divergence (1), a blind spot (3) —
# fails the gate.
set +e
timeout 60 cargo run -q --release -p lobster-bench --bin conformance_smoke -- --canary
canary_status=$?
set -e
if [ "$canary_status" -ne 2 ]; then
    echo "conformance canary gate: expected exit 2 (all canaries detected), got $canary_status" >&2
    exit 1
fi

echo "== workload smoke =="
# Workload diversity gate (DESIGN.md §15): every seeded workload family —
# Zipf skew, heavy-tailed sizes, bimodal cost, growing dataset, compute
# drift — through the differential harness over 5 seeds, plus a
# live-engine delivery replay per family. Hard timeout: a hung run fails
# the gate, not the runner.
timeout 120 cargo run -q --release -p lobster-bench --bin workload_smoke

echo "== proptest corpora =="
# Every crate's regression corpus must exist and be tracked so recorded
# counterexample seeds are never lost.
for d in crates/*/ .; do
    f="$d/proptest-regressions/seeds.txt"
    case "$d" in vendor/*) continue ;; esac
    if [ ! -f "$f" ]; then
        echo "missing proptest regression corpus: $f" >&2
        exit 1
    fi
done

echo "== fault smoke =="
# Small fixed-seed fault-matrix run against the live engine and simulator;
# the hard timeout turns a deadlock into a fast failure.
timeout 120 cargo run -q --release -p lobster-bench --bin fault_smoke

echo "== chaos smoke =="
# Membership gate (DESIGN.md §13): a staggered crash storm with rejoins
# over 5 seeds — differential agreement, exactly-once delivery, and a live
# engine that drains with the plan's membership sequence. The binary
# carries its own in-process 300s watchdog; the outer timeout is the
# backstop.
timeout 300 cargo run -q --release -p lobster-bench --bin chaos_smoke

echo "== doctor smoke =="
# Instrumented smoke run, then lobster_doctor over its trace + sidecars:
# fails on non-zero exit (empty diagnosis included) or a hung run.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
timeout 120 cargo run -q --release -p lobster-bench --bin smoke -- \
    --scale 256 --epochs 2 --trace-out "$obs_dir/trace.json" > /dev/null
timeout 120 cargo run -q --release -p lobster-bench --bin lobster_doctor -- \
    "$obs_dir/trace.json" --out-dir "$obs_dir/results" | tee "$obs_dir/doctor.txt"
grep -q "findings" "$obs_dir/doctor.txt" || {
    echo "doctor produced no findings" >&2
    exit 1
}

echo "== telemetry smoke =="
# Telemetry gate (DESIGN.md §14): a seeded mid-run slowdown must be
# detected by the online detectors within ±1 tick of its onset, the live
# engine's scheduled crash/rejoin must be attributed to its exact ticks,
# lobster_top must render the JSONL stream, and a deliberately violated
# SLO must make lobster_top exit 1.
timeout 120 cargo run -q --release -p lobster-bench --bin telemetry_smoke -- \
    --telemetry-out "$obs_dir/telemetry.jsonl" --slowdown-at 24 --slowdown-factor 3
timeout 60 cargo run -q --release -p lobster-bench --bin lobster_top -- \
    "$obs_dir/telemetry.jsonl" --once \
    --assert-anomaly throughput-cliff,23,25 | tee "$obs_dir/top.txt"
grep -q "anomaly firing" "$obs_dir/top.txt" || {
    echo "lobster_top did not render the telemetry stream" >&2
    exit 1
}
set +e
timeout 60 cargo run -q --release -p lobster-bench --bin lobster_top -- \
    "$obs_dir/telemetry.jsonl" --once --slo "iter_us<=15000" > /dev/null 2>&1
slo_status=$?
set -e
if [ "$slo_status" -ne 1 ]; then
    echo "lobster_top SLO gate: expected exit 1 (violated SLO), got $slo_status" >&2
    exit 1
fi

echo "== perf smoke =="
# Perf observatory gate (DESIGN.md §12): the checked-in trajectory must
# validate, the live quick matrix must pass the regression thresholds
# against it, and the gate must prove it can fire (self-test exits 1).
# The --flight-out poisoned run leaves a flight dump that lobster_doctor
# must turn into a non-empty diagnosis — the crash-forensics path end to
# end. Hard timeout: a hung benchmark fails the gate, not the runner.
flight_dir="$obs_dir/flight"
timeout 180 cargo run -q --release -p lobster-bench --bin lobster_perf -- \
    --validate BENCH_0001.json
timeout 180 cargo run -q --release -p lobster-bench --bin lobster_perf -- \
    --quick --flight-out "$flight_dir" 2> /dev/null
set +e
timeout 180 cargo run -q --release -p lobster-bench --bin lobster_perf -- \
    --quick --self-test-regression 2> /dev/null
perf_selftest_status=$?
set -e
if [ "$perf_selftest_status" -ne 1 ]; then
    echo "perf gate self-test: expected exit 1 (regression detected), got $perf_selftest_status" >&2
    exit 1
fi
timeout 180 cargo run -q --release -p lobster-bench --bin lobster_perf -- --quick
timeout 120 cargo run -q --release -p lobster-bench --bin lobster_doctor -- \
    --flight "$flight_dir" --out-dir "$obs_dir/results" | tee "$obs_dir/flight_doctor.txt"
grep -q "flight dump trigger: worker_panic" "$obs_dir/flight_doctor.txt" || {
    echo "flight doctor did not name the worker_panic trigger" >&2
    exit 1
}

echo "CI OK"
