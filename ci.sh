#!/usr/bin/env sh
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
cargo test -q --workspace

echo "CI OK"
