#!/usr/bin/env sh
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
cargo test -q --workspace

echo "== fault smoke =="
# Small fixed-seed fault-matrix run against the live engine and simulator;
# the hard timeout turns a deadlock into a fast failure.
timeout 120 cargo run -q --release -p lobster-bench --bin fault_smoke

echo "CI OK"
