#!/usr/bin/env sh
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
cargo test -q --workspace

echo "== fault smoke =="
# Small fixed-seed fault-matrix run against the live engine and simulator;
# the hard timeout turns a deadlock into a fast failure.
timeout 120 cargo run -q --release -p lobster-bench --bin fault_smoke

echo "== doctor smoke =="
# Instrumented smoke run, then lobster_doctor over its trace + sidecars:
# fails on non-zero exit (empty diagnosis included) or a hung run.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
timeout 120 cargo run -q --release -p lobster-bench --bin smoke -- \
    --scale 256 --epochs 2 --trace-out "$obs_dir/trace.json" > /dev/null
timeout 120 cargo run -q --release -p lobster-bench --bin lobster_doctor -- \
    "$obs_dir/trace.json" --out-dir "$obs_dir/results" | tee "$obs_dir/doctor.txt"
grep -q "findings" "$obs_dir/doctor.txt" || {
    echo "doctor produced no findings" >&2
    exit 1
}

echo "CI OK"
